"""Command-line interface: run the headline experiments without code.

    python -m repro latency  [--size 1024] [--requests 100] [--mode sparse]
    python -m repro tpcc     [--transactions 400] [--concurrency 1]
    python -m repro calibrate
    python -m repro trace    [--duration 2000] [--rate 100] [--device trail]
    python -m repro profile  <scenario> [--scale 1.0] [--top 20]
    python -m repro faults   <scenario> [--seed 0]
    python -m repro raid-rebuild [--seed 0] [--smoke] [--intensities 4,2,1]
    python -m repro mc       [scenario ...] [--budget 250] [--bound 3]

Every command builds the paper's simulated testbed, runs the
experiment, and prints a table.  ``profile`` runs one of the canonical
perf scenarios (see ``repro.analysis.perf``) under cProfile and prints
the hottest functions — the workflow behind every optimization in
docs/PERFORMANCE.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

from repro.analysis import (
    build_lfs_system, build_standard_system, build_trail_system,
    render_table)
from repro.core.prediction import HeadPositionPredictor
from repro.disk.presets import st41601n
from repro.sim import Simulation
from repro.tpcc import TpccRunConfig, run_tpcc
from repro.workloads import (
    ArrivalMode, SyncWriteWorkload, replay_trace, run_sync_write_workload,
    synthesize_trace)


def _build_device(kind: str):
    if kind == "trail":
        return build_trail_system()
    if kind == "standard":
        return build_standard_system()
    if kind == "lfs":
        return build_lfs_system()
    raise SystemExit(f"unknown device kind {kind!r}")


def cmd_latency(args: argparse.Namespace) -> int:
    """Trail vs standard vs LFS synchronous write latency."""
    workload = SyncWriteWorkload(
        requests_per_process=args.requests,
        write_bytes=args.size,
        mode=ArrivalMode(args.mode),
        processes=args.processes,
        seed=args.seed)
    rows = []
    baseline: Optional[float] = None
    for kind in ("trail", "lfs", "standard"):
        system = _build_device(kind)
        result = run_sync_write_workload(system.sim, system.driver,
                                         workload)
        if kind == "standard":
            baseline = result.mean_latency_ms
        rows.append([kind, result.mean_latency_ms,
                     result.throughput_per_s])
    for row in rows:
        row.append(f"{baseline / row[1]:.1f}x")
    print(render_table(
        ["driver", "mean latency (ms)", "writes/s", "vs standard"],
        rows,
        title=(f"synchronous {args.size} B writes, {args.mode} mode, "
               f"{args.processes} process(es)")))
    return 0


def cmd_tpcc(args: argparse.Namespace) -> int:
    """Table 2-style three-system TPC-C comparison."""
    rows = []
    for system in ("trail", "ext2", "ext2+gc"):
        result = run_tpcc(TpccRunConfig(
            system=system, transactions=args.transactions,
            concurrency=args.concurrency, warehouses=args.warehouses,
            log_buffer_kb=args.log_buffer_kb, seed=args.seed))
        rows.append([system, result.tpmc, result.avg_response_s,
                     result.logging_io_s, result.group_commits])
    print(render_table(
        ["system", "tpmC", "response (s)", "log I/O (s)", "log forces"],
        rows,
        title=(f"TPC-C: {args.transactions} transactions, "
               f"concurrency {args.concurrency}, "
               f"w={args.warehouses}")))
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    """Run the §3.1 δ-calibration sweep on the ST41601N model."""
    sim = Simulation()
    drive = st41601n().make_drive(sim, "log")
    predictor = HeadPositionPredictor(
        drive.geometry, rotation_ms=drive.rotation.rotation_ms)
    result = sim.run_until(sim.process(
        predictor.calibrate(sim, drive, track=1,
                            max_delta=args.max_delta)))
    rows = [[delta, latency] for delta, latency
            in enumerate(result.latencies_by_delta)]
    print(render_table(
        ["delta (sectors)", "mean latency (ms)"], rows,
        title="delta calibration sweep (ST41601N)"))
    print(f"\nchosen delta: {result.delta_sectors} sectors "
          "(paper: < 15)")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Synthesize a trace and replay it on the chosen device."""
    system = _build_device(args.device)
    span = system.driver.data_disks[0].geometry.total_sectors // 2
    trace = synthesize_trace(
        duration_ms=args.duration, requests_per_second=args.rate,
        target_span_sectors=span, write_fraction=args.write_fraction,
        seed=args.seed)
    result = replay_trace(system.sim, system.driver, trace)
    rows = []
    if result.writes.count:
        rows.append(["write", result.writes.count, result.writes.mean,
                     result.writes.percentile(99)])
    if result.reads.count:
        rows.append(["read", result.reads.count, result.reads.mean,
                     result.reads.percentile(99)])
    print(render_table(
        ["op", "count", "mean (ms)", "p99 (ms)"], rows,
        title=(f"trace replay on {args.device}: {len(trace)} requests "
               f"over {args.duration:.0f} ms")))
    return 0


def _hotspot_rows(stats, sort: str, top: int) -> List[List]:
    """Top-``top`` functions from a pstats.Stats, one row per function."""
    key = 3 if sort == "cumulative" else 2  # (cc, nc, tottime, cumtime)
    entries = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda item: item[1][key], reverse=True)
    rows: List[List] = []
    for (filename, lineno, funcname), row in entries[:top]:
        _cc, ncalls, tottime, cumtime, _callers = row
        if filename.startswith("<"):
            where = f"{filename}:{funcname}"
        else:
            short = "/".join(filename.split("/")[-2:])
            where = f"{short}:{lineno}:{funcname}"
        rows.append([round(cumtime * 1e3, 2), round(tottime * 1e3, 2),
                     ncalls, where])
    return rows


def _alloc_rows(scenario: str, scale: float, top: int) -> List[List]:
    """Top-N allocation sites of one scenario run (tracemalloc)."""
    import tracemalloc

    from repro.analysis.perf import SCENARIOS

    func = SCENARIOS[scenario]
    tracemalloc.start(10)
    try:
        func(scale)
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    rows: List[List] = []
    for stat in snapshot.statistics("lineno")[:top]:
        frame = stat.traceback[0]
        short = "/".join(frame.filename.split("/")[-2:])
        rows.append([round(stat.size / 1024, 1), stat.count,
                     f"{short}:{frame.lineno}"])
    return rows


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile a canonical perf scenario (cProfile, top-N hotspot table)."""
    import cProfile
    import json
    import pstats

    from repro.analysis.perf import SCENARIOS, run_scenario

    if args.scenario not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        raise SystemExit(
            f"unknown scenario {args.scenario!r} (known: {known})")
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_scenario(args.scenario, args.scale)
    profiler.disable()
    stats = pstats.Stats(profiler)
    rows = _hotspot_rows(stats, args.sort, args.top)
    alloc_rows = (_alloc_rows(args.scenario, args.scale, args.top)
                  if args.alloc else None)
    if args.json:
        payload: Dict[str, Any] = {
            "scenario": args.scenario,
            "scale": args.scale,
            "ops": result.ops,
            "wall_s": round(result.wall_s, 4),
            "ops_per_sec": round(result.ops_per_sec, 2),
            "sort": args.sort,
            "hotspots": [
                {"cum_ms": cum, "tot_ms": tot, "ncalls": ncalls,
                 "function": where}
                for cum, tot, ncalls, where in rows
            ],
        }
        if alloc_rows is not None:
            payload["allocations"] = [
                {"size_kb": size_kb, "blocks": count, "site": site}
                for size_kb, count, site in alloc_rows
            ]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{args.scenario}: {result.ops} ops in {result.wall_s:.3f} s "
          f"({result.ops_per_sec:,.0f} ops/s, under profiler)\n")
    print(render_table(
        ["cum (ms)", "tot (ms)", "calls", "function"], rows,
        title=(f"top {len(rows)} by {args.sort} — "
               f"{args.scenario} @ scale {args.scale}")))
    if alloc_rows is not None:
        print()
        print(render_table(
            ["size (KiB)", "blocks", "allocation site"], alloc_rows,
            title=(f"top {len(alloc_rows)} allocation sites "
                   f"(tracemalloc, separate run)")))
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Run a fault-injection scenario and print the damage report."""
    # Imported lazily: scenarios pulls in the whole Trail stack.
    from repro.faults.scenarios import SCENARIOS, run_fault_scenario

    if args.scenario not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        raise SystemExit(
            f"unknown fault scenario {args.scenario!r} (known: {known})")
    result = run_fault_scenario(args.scenario, seed=args.seed)
    print(f"{result.name}: {result.description}")
    for note in result.notes:
        print(f"  - {note}")
    print()
    print(render_table(
        ["drive", "transient errs", "retries", "read errs",
         "write errs", "remapped", "spikes"],
        result.drive_rows,
        title=f"drive error counters (seed {args.seed})"))
    if result.injector_rows:
        print()
        print(render_table(
            ["drive", "bad sectors", "grown", "corrupted", "remapped",
             "spares left"],
            result.injector_rows,
            title="injector audit trail"))
    print()
    print(render_table(["metric", "value"], result.driver_rows,
                       title="Trail driver"))
    if result.recovery is not None:
        report = result.recovery
        print()
        print(render_table(
            ["metric", "value"],
            [["records found", report.records_found],
             ["sectors replayed", report.sectors_replayed],
             ["torn records dropped", report.torn_records_dropped],
             ["corrupt records", report.corrupt_records],
             ["unreadable sectors", report.unreadable_sectors],
             ["prev_sect chain broken",
              "yes" if report.chain_broken else "no"],
             ["sectors dropped", len(report.dropped_sectors)]],
            title="recovery report"))
    return 0


def cmd_raid_rebuild(args: argparse.Namespace) -> int:
    """Kill a RAID member under load; report rebuild time and latency."""
    # Imported lazily: the scenario pulls in the whole Trail stack.
    from dataclasses import replace

    from repro.raid.scenario import RaidRebuildConfig, run_raid_rebuild

    base = (RaidRebuildConfig.smoke(seed=args.seed) if args.smoke
            else RaidRebuildConfig(seed=args.seed))
    if args.intensities:
        try:
            intensities = [float(value) for value
                           in args.intensities.split(",")]
        except ValueError:
            raise SystemExit(
                f"bad --intensities value {args.intensities!r}")
    else:
        intensities = [base.interarrival_ms]
    all_ok = True
    summary = []
    for interarrival in intensities:
        result = run_raid_rebuild(
            replace(base, interarrival_ms=interarrival))
        all_ok = all_ok and result.ok
        degraded = next(
            (row for row in result.phase_rows if row[0] == "degraded"),
            None)
        summary.append([
            f"{interarrival:g}",
            f"{result.rebuild_ms:.0f}",
            f"{result.stripes_rebuilt}/{result.stripes_total}",
            "-" if degraded is None else f"{degraded[2]:.2f}",
            "-" if degraded is None else f"{degraded[3]:.2f}",
            str(result.foreground_errors),
            "yes" if result.ok else "NO",
        ])
        print(f"interarrival {interarrival:g} ms "
              f"(seed {base.seed}): rebuild "
              f"{result.rebuild_status} in {result.rebuild_ms:.0f} ms, "
              f"{result.writes_acked} writes / {result.reads_served} "
              f"reads, {result.rebuild_deferrals} write-backs deferred, "
              f"amplification {result.amplification:.2f}")
        print(render_table(
            ["phase", "ops", "p50 (ms)", "p99 (ms)", "mean (ms)"],
            [[phase, str(count), f"{p50:.2f}", f"{p99:.2f}",
              f"{mean:.2f}"]
             for phase, count, p50, p99, mean in result.phase_rows],
            title="foreground latency by phase"))
        print(f"audit: {result.verified_sectors} sectors verified, "
              f"{result.mismatched_sectors} mismatched, parity "
              f"{'clean' if result.parity_clean else 'BROKEN'}, "
              f"{result.lost_sectors} sectors lost  "
              f"[fingerprint {result.fingerprint}]")
        for note in result.notes:
            print(f"  - {note}")
        print()
    if len(intensities) > 1:
        print(render_table(
            ["interarrival (ms)", "rebuild (ms)", "stripes",
             "degraded p50", "degraded p99", "errors", "ok"],
            summary, title="rebuild vs traffic intensity"))
    return 0 if all_ok else 1


def cmd_mc(args: argparse.Namespace) -> int:
    """Bounded schedule exploration over the model-checked scenarios."""
    # Imported lazily: pulls in the whole stack plus the explorer.
    from repro.mc import MUTATIONS, SCENARIOS, explore_scenario
    from repro.sim.explore import IndependenceOracle

    if args.list:
        for scenario in SCENARIOS.values():
            print(f"{scenario.name:18} {scenario.summary} "
                  f"[{', '.join(scenario.explore)}]")
        return 0

    names = args.scenarios or list(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise SystemExit(f"unknown scenario(s): {', '.join(unknown)} "
                         f"(try: repro mc --list)")

    oracle = None
    if not args.no_oracle:
        # The static analyzer lives in tools/, outside the runtime
        # package; `make mc` runs with the repo root importable.  The
        # oracle only prunes — without it the exploration is the same
        # set of schedules, minus the skipping.
        try:
            from tools.trailmc import build_oracle_payload
        except ImportError:
            print("mc: tools.trailmc not importable (run with "
                  "PYTHONPATH=src:. from the repo root); exploring "
                  "without static pruning", file=sys.stderr)
        else:
            oracle = IndependenceOracle.from_segments(
                build_oracle_payload(("src",)))

    mutation = None
    if args.mutate:
        mutation = MUTATIONS.get(args.mutate)
        if mutation is None:
            raise SystemExit(
                f"unknown mutation {args.mutate!r} "
                f"(known: {', '.join(sorted(MUTATIONS))})")

    rows = []
    all_ok = True
    caught = True
    total_schedules = total_explored = total_naive = 0
    for name in names:
        scenario = SCENARIOS[name]
        if mutation is not None:
            with mutation():
                report = explore_scenario(
                    scenario, oracle=oracle, budget=args.budget,
                    preemption_bound=args.bound)
        else:
            report = explore_scenario(
                scenario, oracle=oracle, budget=args.budget,
                preemption_bound=args.bound)
        stats = report.stats
        all_ok = all_ok and report.ok
        caught = caught and not report.ok
        total_schedules += stats.schedules
        total_explored += stats.explored_branches
        total_naive += stats.naive_branches
        rows.append([
            name, str(stats.schedules), str(stats.choice_points),
            f"{stats.explored_branches}/{stats.naive_branches}",
            f"{stats.pruning_ratio:.2f}x", str(stats.max_preemptions),
            str(len(report.divergences)), str(len(report.failures)),
            "ok" if report.ok else "BROKEN",
        ])
        for issue in (report.failures + report.divergences)[:3]:
            what = issue.failure or "digest divergence"
            print(f"mc: {name} schedule {list(issue.decisions)}: {what}")
    print(render_table(
        ["scenario", "schedules", "choice pts", "explored/naive",
         "pruning", "preempt", "div", "fail", "result"],
        rows, title="bounded schedule exploration"))
    overall = (total_naive / total_explored if total_explored else 1.0)
    print(f"total: {total_schedules} schedules explored, "
          f"static pruning {overall:.2f}x"
          + ("" if oracle is not None else " (oracle off)"))
    if mutation is not None:
        if caught:
            print(f"mutation {args.mutate!r} caught by every scenario")
            return 0
        print(f"mutation {args.mutate!r} was NOT caught — the "
              f"checker has lost its teeth")
        return 1
    return 0 if all_ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Track-Based Disk Logging (DSN 2002) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    latency = sub.add_parser("latency", help=cmd_latency.__doc__)
    latency.add_argument("--size", type=int, default=1024)
    latency.add_argument("--requests", type=int, default=100)
    latency.add_argument("--mode", choices=["sparse", "clustered"],
                         default="sparse")
    latency.add_argument("--processes", type=int, default=1)
    latency.add_argument("--seed", type=int, default=0)
    latency.set_defaults(func=cmd_latency)

    tpcc = sub.add_parser("tpcc", help=cmd_tpcc.__doc__)
    tpcc.add_argument("--transactions", type=int, default=400)
    tpcc.add_argument("--concurrency", type=int, default=1)
    tpcc.add_argument("--warehouses", type=int, default=1)
    tpcc.add_argument("--log-buffer-kb", type=int, default=50)
    tpcc.add_argument("--seed", type=int, default=0)
    tpcc.set_defaults(func=cmd_tpcc)

    calibrate = sub.add_parser("calibrate", help=cmd_calibrate.__doc__)
    calibrate.add_argument("--max-delta", type=int, default=20)
    calibrate.set_defaults(func=cmd_calibrate)

    trace = sub.add_parser("trace", help=cmd_trace.__doc__)
    trace.add_argument("--device",
                       choices=["trail", "standard", "lfs"],
                       default="trail")
    trace.add_argument("--duration", type=float, default=2000.0)
    trace.add_argument("--rate", type=float, default=100.0)
    trace.add_argument("--write-fraction", type=float, default=0.7)
    trace.add_argument("--seed", type=int, default=0)
    trace.set_defaults(func=cmd_trace)

    profile = sub.add_parser("profile", help=cmd_profile.__doc__)
    profile.add_argument("scenario",
                         help="perf scenario name (e.g. kernel-churn, "
                              "sector-churn, fig3-sparse, tpcc-small)")
    profile.add_argument("--scale", type=float, default=1.0,
                         help="scenario size multiplier")
    profile.add_argument("--top", type=int, default=20,
                         help="number of rows to print")
    profile.add_argument("--sort", choices=["cumulative", "tottime"],
                         default="cumulative",
                         help="stat ordering (default: cumulative)")
    profile.add_argument("--json", action="store_true",
                         help="emit the report as JSON instead of tables")
    profile.add_argument("--alloc", action="store_true",
                         help="also report top allocation sites "
                              "(tracemalloc, adds a second run)")
    profile.set_defaults(func=cmd_profile)

    faults = sub.add_parser("faults", help=cmd_faults.__doc__)
    faults.add_argument("scenario",
                        help="fault scenario name (flaky-data-disk, "
                             "dying-log-disk, corrupt-log-crash, "
                             "latency-spikes)")
    faults.add_argument("--seed", type=int, default=0,
                        help="fault-plan seed (same seed, same faults)")
    faults.set_defaults(func=cmd_faults)

    raid = sub.add_parser("raid-rebuild", help=cmd_raid_rebuild.__doc__)
    raid.add_argument("--seed", type=int, default=0,
                      help="workload/fault seed (same seed, same run)")
    raid.add_argument("--smoke", action="store_true",
                      help="small fast variant for CI")
    raid.add_argument("--intensities", default="",
                      help="comma-separated mean interarrival times in "
                           "ms; runs the experiment once per value "
                           "(e.g. 4,2,1)")
    raid.set_defaults(func=cmd_raid_rebuild)

    mc = sub.add_parser("mc", help=cmd_mc.__doc__)
    mc.add_argument("scenarios", nargs="*",
                    help="scenario names (default: all; see --list)")
    mc.add_argument("--budget", type=int, default=250,
                    help="max schedules to execute per scenario")
    mc.add_argument("--bound", type=int, default=3,
                    help="preemption bound (non-default picks per "
                         "schedule)")
    mc.add_argument("--no-oracle", action="store_true",
                    help="skip trailmc static pruning")
    mc.add_argument("--mutate", default="",
                    help="run under a seeded mutation and require the "
                         "explorer to catch it")
    mc.add_argument("--list", action="store_true",
                    help="list scenarios and exit")
    mc.set_defaults(func=cmd_mc)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
