"""Reproduction of *Track-Based Disk Logging* (Chiueh & Huang, DSN 2002).

Trail is a disk subsystem that makes synchronous writes cost roughly
data-transfer time plus command overhead: every write is first appended
to a dedicated log disk at the sector about to pass under the head,
acknowledged, and propagated to its real location asynchronously.

Quick start::

    from repro import build_trail_system

    system = build_trail_system()
    sim, trail = system.sim, system.driver

    def app():
        latency = yield trail.write(1000, b"hello world")
        data = yield trail.read(1000, 1)

    sim.run_until(sim.process(app()))

Package map:

- :mod:`repro.sim` — discrete-event simulation kernel
- :mod:`repro.disk` — mechanically explicit disk simulator
- :mod:`repro.core` — the Trail driver (the paper's contribution)
- :mod:`repro.baselines` — standard driver, group commit, LFS comparator
- :mod:`repro.db` / :mod:`repro.tpcc` — transaction engine + TPC-C
- :mod:`repro.workloads` — §5.1 synthetic microbenchmarks
- :mod:`repro.analysis` — experiment scaffolding and tables
"""

from repro.analysis import (
    build_lfs_system, build_standard_system, build_trail_system)
from repro.baselines import (
    GroupCommitPolicy, LfsDriver, StandardDriver, SyncCommitPolicy)
from repro.blockdev import BlockDevice
from repro.core import (
    HeadPositionPredictor, RecoveryManager, RecoveryReport,
    StripedTrailDriver, TrailConfig, TrailDriver)
from repro.db import DurableKv
from repro.disk import (
    DiskDrive, DiskGeometry, st41601n, tiny_test_disk, wd_caviar_10gb)
from repro.fs import FileSystem
from repro.raid import Raid5Array
from repro.sim import Simulation
from repro.tpcc import TpccRunConfig, TpccRunResult, run_tpcc
from repro.workloads import (
    ArrivalMode, SyncWriteWorkload, replay_trace, run_sync_write_workload,
    synthesize_trace)

__version__ = "0.1.0"

__all__ = [
    "ArrivalMode",
    "BlockDevice",
    "DiskDrive",
    "DiskGeometry",
    "DurableKv",
    "FileSystem",
    "GroupCommitPolicy",
    "HeadPositionPredictor",
    "LfsDriver",
    "Raid5Array",
    "RecoveryManager",
    "RecoveryReport",
    "Simulation",
    "StandardDriver",
    "StripedTrailDriver",
    "SyncCommitPolicy",
    "SyncWriteWorkload",
    "TpccRunConfig",
    "TpccRunResult",
    "TrailConfig",
    "TrailDriver",
    "build_lfs_system",
    "build_standard_system",
    "build_trail_system",
    "replay_trace",
    "run_sync_write_workload",
    "run_tpcc",
    "synthesize_trace",
    "st41601n",
    "tiny_test_disk",
    "wd_caviar_10gb",
    "__version__",
]
