"""Ready-made system assemblies for experiments and examples.

Every benchmark needs the same scaffolding — a simulation, drive
models matching the paper's testbed, a formatted/mounted driver — so
it lives here once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.baselines.lfs import LfsDriver
from repro.baselines.standard import StandardDriver
from repro.core.config import TrailConfig
from repro.core.driver import TrailDriver
from repro.disk.drive import DiskDrive
from repro.disk.presets import DriveSpec, st41601n, wd_caviar_10gb
from repro.sim import Simulation


@dataclass
class TrailSystem:
    """A mounted Trail driver and its drives."""

    sim: Simulation
    driver: TrailDriver
    log_drive: DiskDrive
    data_drives: Dict[int, DiskDrive]


@dataclass
class BaselineSystem:
    """A standard (or LFS) driver and its drives."""

    sim: Simulation
    driver: StandardDriver
    data_drives: Dict[int, DiskDrive]


def build_trail_system(
    data_disk_count: int = 1,
    config: Optional[TrailConfig] = None,
    log_spec: Optional[DriveSpec] = None,
    data_spec: Optional[DriveSpec] = None,
    mount: bool = True,
    phase_drift: Optional[Callable[[float], float]] = None,
) -> TrailSystem:
    """The paper's testbed: one ST41601N log disk, WD Caviar data disks.

    With ``mount=True`` the simulation is advanced through format +
    mount so the returned driver is ready for requests.
    """
    sim = Simulation()
    log_drive = (log_spec or st41601n()).make_drive(
        sim, "trail-log", phase_drift=phase_drift)
    data_drives = {
        disk_id: (data_spec or wd_caviar_10gb()).make_drive(
            sim, f"data{disk_id}")
        for disk_id in range(data_disk_count)
    }
    trail_config = config or TrailConfig()
    TrailDriver.format_disk(log_drive, trail_config)
    driver = TrailDriver(sim, log_drive, data_drives, trail_config)
    if mount:
        sim.run_until(sim.process(driver.mount()))
    return TrailSystem(sim=sim, driver=driver, log_drive=log_drive,
                       data_drives=data_drives)


def build_standard_system(
    data_disk_count: int = 1,
    data_spec: Optional[DriveSpec] = None,
) -> BaselineSystem:
    """The paper's baseline: the same data disks behind a plain driver."""
    sim = Simulation()
    data_drives = {
        disk_id: (data_spec or wd_caviar_10gb()).make_drive(
            sim, f"data{disk_id}")
        for disk_id in range(data_disk_count)
    }
    driver = StandardDriver(sim, data_drives)
    return BaselineSystem(sim=sim, driver=driver, data_drives=data_drives)


def build_lfs_system(
    data_spec: Optional[DriveSpec] = None,
    segment_sectors: int = 512,
) -> BaselineSystem:
    """The related-work comparator: one disk behind the LFS driver."""
    sim = Simulation()
    data_drives = {0: (data_spec or wd_caviar_10gb()).make_drive(sim, "lfs0")}
    driver = LfsDriver(sim, data_drives, segment_sectors=segment_sectors)
    return BaselineSystem(sim=sim, driver=driver, data_drives=data_drives)
