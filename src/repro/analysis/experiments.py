"""Ready-made system assemblies for experiments and examples.

Every benchmark needs the same scaffolding — a simulation, drive
models matching the paper's testbed, a formatted/mounted driver — so
it lives here once.  Assembly itself is owned by
:mod:`repro.core.instance`: the ``build_*`` functions here are the
historical entry points, now thin wrappers over
:class:`~repro.core.instance.TrailInstance` /
:class:`~repro.core.instance.BaselineInstance` so every benchmark
constructs a proper isolated instance instead of wiring the stack ad
hoc.  ``TrailSystem`` / ``BaselineSystem`` are kept as aliases for the
existing call sites; the attribute surface (``sim`` / ``driver`` /
``log_drive`` / ``data_drives``) is unchanged.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.config import TrailConfig
from repro.core.instance import BaselineInstance, TrailInstance
from repro.disk.drive import DiskDrive
from repro.disk.presets import DriveSpec

#: Historical names for the facade classes (the dataclasses they
#: replaced had exactly this attribute surface).
TrailSystem = TrailInstance
BaselineSystem = BaselineInstance


def build_trail_system(
    data_disk_count: int = 1,
    config: Optional[TrailConfig] = None,
    log_spec: Optional[DriveSpec] = None,
    data_spec: Optional[DriveSpec] = None,
    mount: bool = True,
    phase_drift: Optional[Callable[[float], float]] = None,
) -> TrailInstance[DiskDrive]:
    """The paper's testbed: one ST41601N log disk, WD Caviar data disks.

    With ``mount=True`` the simulation is advanced through format +
    mount so the returned driver is ready for requests.
    """
    return TrailInstance.build(
        data_disk_count=data_disk_count, config=config,
        log_spec=log_spec, data_spec=data_spec, mount=mount,
        phase_drift=phase_drift)


def build_standard_system(
    data_disk_count: int = 1,
    data_spec: Optional[DriveSpec] = None,
) -> BaselineInstance[DiskDrive]:
    """The paper's baseline: the same data disks behind a plain driver."""
    return BaselineInstance.build_standard(
        data_disk_count=data_disk_count, data_spec=data_spec)


def build_lfs_system(
    data_spec: Optional[DriveSpec] = None,
    segment_sectors: int = 512,
) -> BaselineInstance[DiskDrive]:
    """The related-work comparator: one disk behind the LFS driver."""
    return BaselineInstance.build_lfs(
        data_spec=data_spec, segment_sectors=segment_sectors)
