"""Dynamic twin of the ``trailhot`` static analyzer (``TRAILHOT=1``).

``tools/trailhot`` proves the annotated hot regions are allocation-lean
by reading the code; this module proves it by running them.  Each
canonical perf scenario executes under a ``sys.setprofile`` hook that
counts Python function calls and under ``tracemalloc`` for peak traced
bytes, and both numbers are gated against checked-in per-scenario
budgets (``benchmarks/perf/BENCH_alloc.json``).

Wall-clock gates must be loose because shared machines are noisy; call
counts are *deterministic* for the seeded scenarios, so this gate can
be tight.  A change that reintroduces a per-record generator frame, a
per-event constructor, or a per-iteration container shows up as a
call-count jump of thousands long before it is distinguishable from
noise in ops/sec.

Regenerate the budgets after an intentional change with::

    PYTHONPATH=src python -m repro.analysis.hotalloc --update

and gate with ``make test-trailhot`` (the ``TRAILHOT=1`` tier-1 leg).
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import tracemalloc
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.perf import SCENARIOS

#: Committed per-scenario budgets, next to the wall-clock baseline.
DEFAULT_BUDGET_PATH = (Path(__file__).resolve().parents[3]
                       / "benchmarks" / "perf" / "BENCH_alloc.json")

#: Scale every scenario is measured and gated at.  Small enough that
#: the TRAILHOT=1 leg stays fast; the call counts still cover thousands
#: of record accesses, so a per-record regression moves them by >10%.
GATE_SCALE = 0.05

#: Budget = measured * headroom.  Call counts are deterministic but a
#: legitimate refactor may add a few frames; peak bytes wobble with
#: allocator/GC timing, so they get more room.
CALL_HEADROOM = 1.4
PEAK_HEADROOM = 2.0


@dataclass
class AllocResult:
    """Allocation profile of one scenario run."""

    scenario: str
    #: Python function calls during the run (``sys.setprofile``).
    calls: int
    #: Peak tracemalloc-traced bytes during the run.
    peak_bytes: int


def measure_scenario(name: str, scale: float = GATE_SCALE) -> AllocResult:
    """Run ``name`` once, counting Python calls and peak traced bytes.

    A tiny warm-up run settles lazy imports and module-level caches
    first, so the measured run reflects steady-state behaviour — the
    thing the budgets are meant to pin.
    """
    if name not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown perf scenario {name!r} (known: {known})")
    func = SCENARIOS[name]
    func(0.01)  # warm-up: imports and one-time caches
    gc.collect()
    calls = 0

    def count_calls(frame, event, arg):
        nonlocal calls
        if event == "call":
            calls += 1

    tracemalloc.start()
    sys.setprofile(count_calls)
    try:
        func(scale)
    finally:
        sys.setprofile(None)
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    return AllocResult(scenario=name, calls=calls, peak_bytes=peak)


def measure_all(scale: float = GATE_SCALE) -> List[AllocResult]:
    """Measure every canonical scenario."""
    return [measure_scenario(name, scale) for name in sorted(SCENARIOS)]


def load_budgets(path: Path = DEFAULT_BUDGET_PATH) -> Dict:
    """Load the committed budget file."""
    return json.loads(Path(path).read_text())


def write_budgets(results: List[AllocResult],
                  path: Path = DEFAULT_BUDGET_PATH,
                  scale: float = GATE_SCALE) -> Dict:
    """Derive budgets from ``results`` and write them as stable JSON."""
    payload = {
        "scale": scale,
        "call_headroom": CALL_HEADROOM,
        "peak_headroom": PEAK_HEADROOM,
        "scenarios": {
            result.scenario: {
                "measured_calls": result.calls,
                "measured_peak_bytes": result.peak_bytes,
                "max_calls": int(result.calls * CALL_HEADROOM),
                "max_peak_bytes": int(result.peak_bytes * PEAK_HEADROOM),
            }
            for result in results
        },
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def check_result(result: AllocResult, budgets: Dict) -> List[str]:
    """Budget violations for one measured scenario (empty = within)."""
    row = budgets["scenarios"].get(result.scenario)
    if row is None:
        return [f"{result.scenario}: no budget committed; run --update"]
    problems = []
    if result.calls > row["max_calls"]:
        problems.append(
            f"{result.scenario}: {result.calls:,} Python calls exceed "
            f"the budget of {row['max_calls']:,} "
            f"(measured baseline {row['measured_calls']:,})")
    if result.peak_bytes > row["max_peak_bytes"]:
        problems.append(
            f"{result.scenario}: peak {result.peak_bytes:,} traced bytes "
            f"exceed the budget of {row['max_peak_bytes']:,} "
            f"(measured baseline {row['measured_peak_bytes']:,})")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hotalloc",
        description="measure per-scenario Python-call and peak-allocation "
                    "profiles and gate them against BENCH_alloc.json")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the budget file from this run")
    parser.add_argument("--json", action="store_true",
                        help="emit the measurements as JSON")
    parser.add_argument("--budget", type=Path, default=DEFAULT_BUDGET_PATH,
                        help="budget file (default: benchmarks/perf/"
                             "BENCH_alloc.json)")
    args = parser.parse_args(argv)
    results = measure_all()
    if args.update:
        payload = write_budgets(results, args.budget)
        if args.json:
            json.dump(payload, sys.stdout, indent=2, sort_keys=True)
            print()
        else:
            print(f"hotalloc: wrote budgets for {len(results)} scenarios "
                  f"to {args.budget}")
        return 0
    if args.json:
        json.dump({result.scenario: {"calls": result.calls,
                                     "peak_bytes": result.peak_bytes}
                   for result in results},
                  sys.stdout, indent=2, sort_keys=True)
        print()
    try:
        budgets = load_budgets(args.budget)
    except FileNotFoundError:
        print(f"hotalloc: no budget file at {args.budget}; "
              f"run with --update first", file=sys.stderr)
        return 2
    problems = [problem for result in results
                for problem in check_result(result, budgets)]
    for problem in problems:
        print(f"hotalloc: OVER BUDGET — {problem}", file=sys.stderr)
    if not problems and not args.json:
        for result in results:
            print(f"  {result.scenario:<13} {result.calls:>9,} calls  "
                  f"{result.peak_bytes:>11,} peak bytes")
        print(f"hotalloc: {len(results)} scenarios within budget")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
