"""Plain-text table rendering for benchmark output.

The benchmark harness prints its results in the same row/column layout
as the paper's tables and figures so a reader can compare side by side.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_cell(value) -> str:
    """Human-friendly formatting for mixed numeric/string cells."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    text_rows: List[List[str]] = [[format_cell(cell) for cell in row]
                                  for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(width)
                          for cell, width in zip(cells, widths))

    separator = "-+-".join("-" * width for width in widths)
    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(separator)
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def speedup(baseline: float, improved: float) -> float:
    """How many times faster ``improved`` is than ``baseline``.

    Both arguments are costs (times): ``speedup(10, 2) == 5``.
    """
    if improved <= 0:
        raise ValueError("improved cost must be positive")
    return baseline / improved
