"""Experiment scaffolding and result presentation."""

from repro.analysis.experiments import (
    BaselineSystem, TrailSystem, build_lfs_system, build_standard_system,
    build_trail_system)
from repro.analysis.tables import format_cell, render_table, speedup

__all__ = [
    "BaselineSystem",
    "TrailSystem",
    "build_lfs_system",
    "build_standard_system",
    "build_trail_system",
    "format_cell",
    "render_table",
    "speedup",
]
