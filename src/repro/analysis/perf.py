"""Wall-clock performance scenarios and the ``BENCH_perf.json`` reporter.

Simulated time is free; wall-clock time is what caps how far the
``--full-scale`` sweeps and the ROADMAP's beyond-paper scaling can go.
This module defines the canonical scenarios every perf PR is measured
against and the stable report schema::

    {scenario: {"ops_per_sec": float, "wall_s": float}}

Scenarios (each takes a ``scale`` multiplier; ``ops`` is scenario-
specific but fixed per scenario so ops/sec comparisons are meaningful):

* ``kernel-churn``   — pure event-kernel churn: timeout yields, event
  succeed/wait cycles, and condition fan-in, no disk model at all.
* ``sector-churn``   — :class:`~repro.disk.sectors.SectorStore`
  write/read/erase mix plus ``written_extents`` scans.
* ``fig3-sparse``    — the Fig. 3 sparse synchronous-write sweep on
  the full Trail stack (ST41601N log disk + Caviar data disk).
* ``tpcc-small``     — a small seeded TPC-C run on Trail.

The scenario bodies are deliberately frozen: the checked-in
pre-optimization baseline (``benchmarks/perf/BENCH_baseline.json``)
was captured with exactly this code, so speedup ratios measure the
engine, not the benchmark.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from types import MappingProxyType
from typing import Callable, Dict, Mapping, NamedTuple

#: Report rows: {scenario: {"ops_per_sec": ..., "wall_s": ...}}.
BenchReport = Dict[str, Dict[str, float]]

#: The microbenchmarks held to the >= 2x speedup gate.
MICROBENCHMARKS = ("kernel-churn", "sector-churn")


class PerfResult(NamedTuple):
    """Outcome of one timed scenario run."""

    scenario: str
    ops: int
    wall_s: float

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.wall_s if self.wall_s > 0 else float("inf")


# ----------------------------------------------------------------------
# Scenario bodies (frozen — see module docstring)


def kernel_churn(scale: float = 1.0) -> int:
    """Event-kernel churn: timeouts, succeed/wait cycles, conditions."""
    from repro.sim import Simulation

    rounds = max(1, int(40_000 * scale))
    sim = Simulation()
    ops = 0

    def ticker(count):
        for _ in range(count):
            yield sim.timeout(0.01)

    def pingpong(count):
        for _ in range(count):
            event = sim.event()
            event.succeed(None)
            yield event

    def fanin(count):
        for _ in range(count):
            yield sim.all_of([sim.timeout(0.01), sim.timeout(0.02)])

    sim.process(ticker(rounds))
    sim.process(ticker(rounds))
    sim.process(pingpong(rounds))
    sim.process(fanin(rounds))
    sim.run()
    # events processed: 2 tickers + 1 pingpong + fanin (2 timeouts + 1
    # condition) per round, ignoring per-process bookkeeping events.
    ops = rounds * 6
    return ops


def sector_churn(scale: float = 1.0) -> int:
    """SectorStore write/read/erase mix with extent scans."""
    from repro.disk.sectors import SectorStore
    from repro.units import SECTOR_SIZE

    rounds = max(1, int(12_000 * scale))
    total = 1 << 16
    store = SectorStore(total)
    one = bytes(range(256)) * (SECTOR_SIZE // 256)
    eight = one * 8
    ops = 0
    lba = 0
    for index in range(rounds):
        lba = (lba * 31 + 97) % (total - 16)
        store.write(lba, one)            # 1-sector aligned write
        store.write(lba + 1, eight)      # 8-sector aligned write
        store.write_sector(lba + 9, one)
        store.read(lba, 10)              # contiguous read across both
        store.read_sector(lba + 4)
        ops += 1 + 8 + 1 + 10 + 1
        if index % 16 == 0:
            for _run in store.written_extents():
                ops += 1
        if index % 256 == 255:
            store.erase(0, total)        # large-extent erase
            ops += 1
    return ops


def fig3_sparse(scale: float = 1.0) -> int:
    """Fig. 3 sparse-mode synchronous writes on the full Trail stack."""
    from repro.analysis.experiments import build_trail_system
    from repro.workloads import (
        ArrivalMode, SyncWriteWorkload, run_sync_write_workload)

    requests = max(10, int(150 * scale))
    system = build_trail_system()
    workload = SyncWriteWorkload(
        requests_per_process=requests,
        write_bytes=1024,
        mode=ArrivalMode.SPARSE,
        processes=2,
        seed=7)
    run_sync_write_workload(system.sim, system.driver, workload)
    return requests * 2


def tpcc_small(scale: float = 1.0) -> int:
    """A small seeded TPC-C run on the Trail system."""
    from repro.tpcc import TpccRunConfig, run_tpcc

    transactions = max(10, int(120 * scale))
    result = run_tpcc(TpccRunConfig(
        system="trail", transactions=transactions, concurrency=2, seed=11))
    return result.transactions_completed


#: Scenario name -> callable(scale) -> ops performed.
# trailiso: shared_immutable -- scenario registry frozen at import
SCENARIOS: Mapping[str, Callable[[float], int]] = MappingProxyType({
    "kernel-churn": kernel_churn,
    "sector-churn": sector_churn,
    "fig3-sparse": fig3_sparse,
    "tpcc-small": tpcc_small,
})


# ----------------------------------------------------------------------
# Runner / reporter


def run_scenario(name: str, scale: float = 1.0) -> PerfResult:
    """Time one named scenario; returns ops, wall seconds, ops/sec."""
    if name not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown perf scenario {name!r} (known: {known})")
    func = SCENARIOS[name]
    # The perf harness is the one place wall-clock time is the point:
    # it measures the engine, not the simulation.
    start = time.perf_counter()  # trailint: disable=TRL001
    ops = func(scale)
    wall = time.perf_counter() - start  # trailint: disable=TRL001
    return PerfResult(scenario=name, ops=ops, wall_s=wall)


def run_all(scale: float = 1.0) -> BenchReport:
    """Run every scenario; returns the ``BENCH_perf.json`` mapping."""
    report: BenchReport = {}
    for name in SCENARIOS:
        result = run_scenario(name, scale)
        report[name] = {
            "ops_per_sec": round(result.ops_per_sec, 2),
            "wall_s": round(result.wall_s, 4),
        }
    return report


def write_report(report: BenchReport, path: Path) -> None:
    """Write a report mapping as stable, diff-friendly JSON."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_report(path: Path) -> BenchReport:
    """Load a previously written report."""
    return json.loads(Path(path).read_text())


def speedup(new: BenchReport, old: BenchReport, scenario: str) -> float:
    """ops/sec ratio of ``new`` over ``old`` for ``scenario``."""
    return (new[scenario]["ops_per_sec"] / old[scenario]["ops_per_sec"])
