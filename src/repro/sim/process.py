"""Generator-based simulation processes.

A process is a Python generator that yields :class:`~repro.sim.events.Event`
objects.  When a yielded event fires, the generator resumes with the
event's value (or the event's exception is thrown into it).  A
:class:`Process` is itself an event that fires when the generator
returns, so processes can wait on each other.

Processes can be interrupted: :meth:`Process.interrupt` throws an
:class:`Interrupt` into the generator at its current yield point, which
is how the Trail driver models cancelled disk operations and how tests
exercise crash injection mid-I/O.

The resume path here runs once per yield of every process in the
simulation, so it reads event state through slots directly instead of
via properties and registers a single pre-bound ``_resume`` callback
(binding a method per yield costs an allocation).  Semantics are
identical to the property-based implementation.
"""

from __future__ import annotations

from types import GeneratorType
from typing import Any, Callable, Generator, Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim.events import Event, _PENDING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulation

ProcessGenerator = Generator[Event, Any, Any]

_new_event: Callable[..., Event] = Event.__new__


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        """The cause object passed to ``interrupt()``."""
        return self.args[0] if self.args else None


class Process(Event):
    """Wraps a generator and drives it through the event kernel.

    The process event itself succeeds with the generator's return value,
    or fails with the exception that escaped the generator.
    """

    __slots__ = ("_generator", "_waiting_on", "_bound_resume", "name")

    def __init__(
        self,
        sim: "Simulation",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ) -> None:
        if generator.__class__ is not GeneratorType \
                and not hasattr(generator, "throw"):
            raise SimulationError(
                f"process requires a generator, got {type(generator).__name__}")
        # Inlined Event.__init__ for the process event itself — TPC-C
        # spawns a process per transaction and per I/O, so the two
        # constructor frames here are measurable (see kernel.event()).
        self.sim = sim
        self._cb1 = None
        self._callbacks = None
        self._processed = False
        self._value = _PENDING
        self._exception = None
        self._triggered = False
        self._defused = False
        self._generator: Optional[ProcessGenerator] = generator
        self._waiting_on: Optional[Event] = None
        self._bound_resume: Optional[Callable[[Event], None]] = self._resume
        self.name: str = name or getattr(generator, "__name__", "process")
        # Kick off the generator at the current simulation time via an
        # immediately-triggered initialization event (construction and
        # succeed() inlined; ordering and sequence numbering identical).
        init = _new_event(Event)
        init.sim = self.sim
        init._cb1 = self._bound_resume
        init._callbacks = None
        init._processed = False
        init._value = None
        init._exception = None
        init._triggered = True
        init._defused = False
        sim._sequence = sequence = sim._sequence + 1
        sim._ready.append((sim._now, sequence, init))

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        Interrupting a finished process is an error; interrupting a
        process that is waiting on an event detaches it from that event
        (the event may still fire, but this process no longer reacts).
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        # Detach from whatever we were waiting on so the normal resume
        # callback becomes a no-op for this wait.
        waited = self._waiting_on
        self._waiting_on = None
        interrupt_event = Event(self.sim)
        interrupt_event.add_callback(
            lambda _evt: self._throw_in(Interrupt(cause), waited))
        interrupt_event.succeed()

    # ------------------------------------------------------------------
    # Kernel plumbing

    def _finish(self, stop: StopIteration) -> None:
        """Complete the process and break its callback/generator cycle.

        ``self._bound_resume`` references ``self``, so a finished
        process would otherwise be cyclic garbage that only the GC can
        reclaim — measurable pressure in workloads that spawn a process
        per I/O (TPC-C spawns tens of thousands).
        """
        self._bound_resume = None
        self._generator = None
        self.succeed(stop.value)

    # trailhot: hot -- runs once per yield of every process
    def _resume(self, event: Event) -> None:
        """Resume the generator with ``event``'s outcome."""
        if self._triggered:
            # The process already finished (e.g. it was interrupted and
            # returned); a previously-awaited event firing now is stale.
            # The process deliberately moved on, so a stale failure is
            # considered handled.
            if event._triggered and event._exception is not None:
                event._defused = True
            return
        waiting = self._waiting_on
        if event is not waiting and waiting is not None:
            # We were interrupted while waiting on this event; stale wakeup.
            if event._triggered and event._exception is not None:
                event._defused = True
            return
        self._waiting_on = None
        sim = self.sim
        # Both are only None after _finish/_fail_or_crash, which also
        # set _triggered — the guard above already returned.
        generator = self._generator
        bound = self._bound_resume
        sim._active_process = self
        try:
            if event._exception is None:
                value = event._value
                target = generator.send(
                    value if value is not _PENDING else None)
            else:
                event._defused = True
                target = generator.throw(event._exception)
        except StopIteration as stop:
            sim._active_process = None
            self._finish(stop)
            return
        except BaseException as exc:
            sim._active_process = None
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self._fail_or_crash(exc)
            return
        sim._active_process = None
        # Inlined _wait_on fast path: yielded a same-sim, not-yet-
        # processed event with a free first-callback slot.
        if (isinstance(target, Event) and target.sim is sim
                and not target._processed):
            self._waiting_on = target
            if target._cb1 is None:
                target._cb1 = bound
            elif target._callbacks is None:
                target._callbacks = [bound]
            else:
                target._callbacks.append(bound)
            return
        self._wait_on(target)

    def _throw_in(self, exc: BaseException, interrupted_event: Optional[Event]) -> None:
        """Throw ``exc`` into the generator (used by interrupt)."""
        if self._triggered:
            # The process finished between the interrupt call and its
            # delivery (same-timestamp race); nothing to deliver to.
            return
        generator = self._generator
        assert generator is not None
        self.sim._active_process = self
        try:
            target = generator.throw(exc)
        except StopIteration as stop:
            self.sim._active_process = None
            self._finish(stop)
            return
        except BaseException as err:
            self.sim._active_process = None
            if isinstance(err, (KeyboardInterrupt, SystemExit)):
                raise
            self._fail_or_crash(err)
            return
        self.sim._active_process = None
        self._wait_on(target)

    def _wait_on(self, target: Event) -> None:
        if not isinstance(target, Event):
            self._fail_or_crash(SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"))
            return
        if target.sim is not self.sim:
            self._fail_or_crash(SimulationError(
                f"process {self.name!r} yielded an event from another simulation"))
            return
        self._waiting_on = target
        bound = self._bound_resume
        assert bound is not None
        target.add_callback(bound)

    def _fail_or_crash(self, exc: BaseException) -> None:
        """Propagate a generator exception via this process's own event.

        Waiters that receive the failure defuse it; if nobody waits, the
        kernel re-raises the exception out of ``run()`` so that process
        crashes never pass silently.
        """
        self._bound_resume = None
        self._generator = None
        self.fail(exc)

    def __repr__(self) -> str:
        state = "finished" if self._triggered else (
            "waiting" if self._waiting_on is not None else "running")
        return f"<Process {self.name!r} {state}>"
