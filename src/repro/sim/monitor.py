"""Measurement probes for simulations.

These are deliberately simple accumulators: benchmarks attach them to
drivers and read summary statistics at the end of a run.  They avoid
storing full traces unless asked, so long TPC-C runs stay cheap.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulation


class LatencyRecorder:
    """Accumulates scalar samples (latencies, sizes) with summary stats."""

    def __init__(self, keep_samples: bool = False) -> None:
        self._count = 0
        self._total = 0.0
        self._total_sq = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._samples: Optional[List[float]] = [] if keep_samples else None

    def record(self, value: float) -> None:
        """Add one sample."""
        self._count += 1
        self._total += value
        self._total_sq += value * value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        if self._samples is not None:
            self._samples.append(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("no samples recorded")
        return self._total / self._count

    @property
    def minimum(self) -> float:
        if self._min is None:
            raise ValueError("no samples recorded")
        return self._min

    @property
    def maximum(self) -> float:
        if self._max is None:
            raise ValueError("no samples recorded")
        return self._max

    @property
    def stddev(self) -> float:
        """Population standard deviation of the samples."""
        if self._count == 0:
            raise ValueError("no samples recorded")
        mean = self.mean
        variance = max(0.0, self._total_sq / self._count - mean * mean)
        return math.sqrt(variance)

    @property
    def samples(self) -> List[float]:
        if self._samples is None:
            raise ValueError("recorder was created with keep_samples=False")
        return list(self._samples)

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile; requires keep_samples=True."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        data = sorted(self.samples)
        if not data:
            raise ValueError("no samples recorded")
        if len(data) == 1:
            return data[0]
        rank = (p / 100.0) * (len(data) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return data[low]
        frac = rank - low
        return data[low] * (1.0 - frac) + data[high] * frac

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's samples into this one."""
        self._count += other._count
        self._total += other._total
        self._total_sq += other._total_sq
        for bound in (other._min, other._max):
            if bound is not None:
                self._min = bound if self._min is None else min(self._min, bound)
                self._max = bound if self._max is None else max(self._max, bound)
        if self._samples is not None and other._samples is not None:
            self._samples.extend(other._samples)

    def __repr__(self) -> str:
        if self._count == 0:
            return "<LatencyRecorder empty>"
        return (f"<LatencyRecorder n={self._count} mean={self.mean:.3f} "
                f"min={self.minimum:.3f} max={self.maximum:.3f}>")


class PhasedLatencyRecorder:
    """Latency samples bucketed by a mutable experiment-phase label.

    The RAID rebuild scenario flips the phase from ``healthy`` to
    ``degraded`` at the instant it kills a drive, and to ``rebuilt``
    once the spare holds a full copy; every sample lands in the bucket
    active at record time.  That yields per-phase p50/p99 without
    tagging individual samples, and the phase sequence doubles as the
    experiment's timeline.
    """

    def __init__(self, initial_phase: str = "healthy") -> None:
        self._phase = initial_phase
        self._recorders: Dict[str, LatencyRecorder] = {}

    @property
    def phase(self) -> str:
        """The label new samples are currently recorded under."""
        return self._phase

    def set_phase(self, phase: str) -> None:
        """Route subsequent samples to ``phase``'s bucket."""
        self._phase = phase

    def record(self, value: float) -> None:
        """Add one sample to the current phase's bucket."""
        self.recorder(self._phase).record(value)

    def recorder(self, phase: str) -> LatencyRecorder:
        """The (created-on-demand) recorder for ``phase``."""
        recorder = self._recorders.get(phase)
        if recorder is None:
            recorder = LatencyRecorder(keep_samples=True)
            self._recorders[phase] = recorder
        return recorder

    @property
    def phases(self) -> List[str]:
        """Phases that received at least one sample, in first-use order."""
        return [phase for phase, recorder in self._recorders.items()
                if recorder.count > 0]

    def overall(self) -> LatencyRecorder:
        """All phases merged into one recorder."""
        merged = LatencyRecorder(keep_samples=True)
        for recorder in self._recorders.values():
            merged.merge(recorder)
        return merged


class CounterSet:
    """A named bag of monotonically increasing counters."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def get(self, name: str) -> float:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all counters."""
        return dict(self._counters)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counters.items()))
        return f"<CounterSet {inner}>"


class UtilizationTracker:
    """Time-weighted average of a piecewise-constant level (queue depth,
    busy/idle state) over simulated time."""

    def __init__(self, sim: "Simulation",
                 initial_level: float = 0.0) -> None:
        self._sim = sim
        self._level = initial_level
        self._last_change = sim.now
        self._weighted_total = 0.0
        self._start = sim.now

    @property
    def level(self) -> float:
        return self._level

    def set_level(self, level: float) -> None:
        """Record a level change at the current simulation time."""
        now = self._sim.now
        self._weighted_total += self._level * (now - self._last_change)
        self._level = level
        self._last_change = now

    def adjust(self, delta: float) -> None:
        """Shift the level by ``delta`` (e.g. +1 on enqueue, -1 on dequeue)."""
        self.set_level(self._level + delta)

    def time_average(self) -> float:
        """Time-weighted mean level from construction until now."""
        now = self._sim.now
        elapsed = now - self._start
        if elapsed <= 0:
            return self._level
        total = self._weighted_total + self._level * (now - self._last_change)
        return total / elapsed
