"""Pluggable dispatch-order control over the kernel's ready queue.

The kernel dispatches same-time events in scheduling (sequence) order.
Correct components must not *depend* on that tie-break: any total
order consistent with simulated time is a legal cooperative schedule.
Two harnesses exercise that freedom — the seeded tie-break
perturbation (:class:`~repro.sim.perturb.PerturbedSimulation`, PR 4)
and the bounded schedule explorer (:mod:`repro.sim.explore`) — and
both used to need their own queue shim.  This module is the single
override hook they now share.

:class:`ControlledReady` is a drop-in for the kernel's ready deque.
``Event.succeed``/``fail`` and zero-delay timeouts append to
``sim._ready`` directly (the inlined hot path), so the control point
wraps the queue object itself rather than hooking ``_schedule_event``
— every immediate event goes through the policy no matter which code
path scheduled it.  Because simulated time never decreases, appends
arrive already sorted by time; the entries sharing the earliest time
form the **front group**, and the installed :class:`DispatchPolicy`
picks which member of that group dispatches next.  Cross-time ordering
is never altered — only the legal same-time tie-break is.

Only the deque operations the kernel uses are provided (truth value,
``[0]``, ``append``, ``popleft``, ``len``), and ``[0]`` always answers
with the entry ``popleft`` would return, so the kernel's
``heap[0] < ready[0]`` merge comparisons stay exact.
"""

from __future__ import annotations

from typing import Deque, Dict, List, Optional, Sequence, Tuple

from collections import deque
from random import Random

from repro.sim.events import Event

#: One ready-queue entry, exactly as the kernel stores it.
Entry = Tuple[float, int, Event]


class DispatchPolicy:
    """Chooses which same-time ready entry dispatches next.

    The base policy reproduces the kernel's FIFO tie-break (always the
    oldest entry), so installing it is behavior-neutral.  Subclasses
    override :meth:`choose`; :meth:`on_append` / :meth:`on_pop` exist
    so stateful policies (seeded draws, decision logs) can track queue
    membership without a second bookkeeping pass.
    """

    def on_append(self, entry: Entry) -> None:
        """Called once per entry as it enters the ready queue."""

    def on_pop(self, entry: Entry) -> None:
        """Called once per entry as it leaves the ready queue."""

    def choose(self, group: Sequence[Entry]) -> int:
        """Index of the front-group entry to dispatch next.

        ``group`` holds every queued entry at the earliest queued time,
        in arrival (= sequence) order; it always has >= 2 members (the
        singleton case never consults the policy).
        """
        return 0


class SeededShufflePolicy(DispatchPolicy):
    """Seeded-random tie-breaks: the perturbation harness's policy.

    Each entry gets one RNG draw as it is appended; the front-group
    member with the smallest ``(draw, arrival)`` key dispatches next.
    This reproduces — schedule-for-schedule, per seed — the retired
    ``_PerturbedReady`` heap keyed ``(when, draw, arrival, sequence)``:
    the front group is exactly the set of minimum-time entries, and the
    heap's global minimum over that set was the same ``(draw,
    arrival)`` minimum computed here.
    """

    __slots__ = ("_rng", "_arrivals", "_draws")

    def __init__(self, rng: Random) -> None:
        self._rng = rng
        self._arrivals = 0
        #: sequence -> (draw, arrival); sequences are unique per sim.
        self._draws: Dict[int, Tuple[float, int]] = {}

    def on_append(self, entry: Entry) -> None:
        self._arrivals += 1
        self._draws[entry[1]] = (self._rng.random(), self._arrivals)

    def on_pop(self, entry: Entry) -> None:
        self._draws.pop(entry[1], None)

    def choose(self, group: Sequence[Entry]) -> int:
        draws = self._draws
        best = 0
        best_key = draws[group[0][1]]
        for index in range(1, len(group)):
            key = draws[group[index][1]]
            if key < best_key:
                best = index
                best_key = key
        return best


class ControlledReady:
    """Drop-in for the kernel's ready deque with a pluggable tie-break.

    Entries are kept in arrival order (which is also time order — see
    the module docstring); the policy's chosen head index is memoized
    so the kernel's peek-then-pop sequences make one choice, and the
    memo is invalidated whenever an append changes the front group.
    """

    __slots__ = ("_entries", "_policy", "_head")

    def __init__(self, policy: DispatchPolicy) -> None:
        self._entries: Deque[Entry] = deque()
        self._policy = policy
        #: Memoized chosen index within the front group, or None.
        self._head: Optional[int] = None

    @property
    def policy(self) -> DispatchPolicy:
        return self._policy

    def append(self, item: Entry) -> None:
        self._head = None
        self._entries.append(item)
        self._policy.on_append(item)

    def _choose(self) -> int:
        head = self._head
        if head is not None:
            return head
        entries = self._entries
        front = entries[0][0]
        count = 1
        total = len(entries)
        # Appends arrive time-sorted, so the front group is the leading
        # run whose time does not exceed the head's (i.e. equals it).
        while count < total and entries[count][0] <= front:
            count += 1
        if count == 1:
            head = 0
        else:
            head = self._policy.choose([entries[i] for i in range(count)])
            if head < 0 or head >= count:
                raise IndexError(
                    f"dispatch policy chose index {head} outside the "
                    f"front group of {count}")
        self._head = head
        return head

    def peek_group(self) -> List[Entry]:
        """The same-time front group, in arrival order.

        Unlike ``[0]`` this never consults the policy — the schedule
        explorer uses it to inspect an instance's dispatch candidates
        without consuming a scheduling decision.
        """
        entries = self._entries
        if not entries:
            return []
        front = entries[0][0]
        group = [entries[0]]
        count = 1
        total = len(entries)
        while count < total and entries[count][0] <= front:
            group.append(entries[count])
            count += 1
        return group

    def popleft(self) -> Entry:
        index = self._choose()
        self._head = None
        entries = self._entries
        if index == 0:
            item = entries.popleft()
        else:
            entries.rotate(-index)
            item = entries.popleft()
            entries.rotate(index)
        self._policy.on_pop(item)
        return item

    def __getitem__(self, index: int) -> Entry:
        if index:
            raise IndexError(
                "ControlledReady exposes only the chosen head ([0])")
        return self._entries[self._choose()]

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)


__all__: List[str] = [
    "ControlledReady", "DispatchPolicy", "Entry", "SeededShufflePolicy",
]
