"""The discrete-event simulation kernel.

:class:`Simulation` owns the simulated clock and the pending-event
queues.  Time is in milliseconds (``float``).  Events scheduled for the
same instant fire in scheduling order, which makes every run
deterministic — a property the recovery and batching tests rely on.

Typical use::

    sim = Simulation()

    def writer(sim, disk):
        for _ in range(10):
            yield disk.write(...)
            yield sim.timeout(2.0)

    sim.process(writer(sim, disk))
    sim.run()

Scheduling internals (see docs/PERFORMANCE.md): pending events live in
two structures that together form one logical priority queue keyed by
``(time, sequence)``:

* ``_heap``  — a binary heap of *delayed* events (``delay > 0``);
* ``_ready`` — a plain FIFO of *immediate* events (``succeed``/``fail``
  and zero-delay timeouts).  Because simulated time never decreases and
  sequence numbers only grow, appends arrive already sorted by
  ``(time, sequence)``, so a deque replaces O(log n) heap traffic for
  the most common event class.

The dispatch loop pops whichever head is globally smallest, which
reproduces exactly the ordering of a single shared heap.  The loop in
:meth:`run` is the hottest code in the whole reproduction — every
simulated I/O passes through it several times — so queue heads and
``heappop`` are bound to locals and per-event callback dispatch is
inlined.  :meth:`_step` is the single-step equivalent used by
:meth:`run_until`; both produce identical event ordering (the seeded
TPC-C trace test pins this down).
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import (
    Any, Callable, Deque, List, Optional, Sequence, Tuple, Type)

from repro.errors import SimulationError
from repro.sim.events import Event, Timeout, Condition, all_of, any_of, _PENDING
from repro.sim.process import Process, ProcessGenerator
from repro.sim.sanitizer import TrailSanitizer, sanitizer_from_env

_new_timeout: Callable[[Type[Timeout]], Timeout] = Timeout.__new__
_new_event: Callable[[Type[Event]], Event] = Event.__new__


class Simulation:
    """Event scheduler and simulated clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, Event]] = []
        self._ready: Deque[Tuple[float, int, Event]] = deque()
        self._sequence = 0
        self._active_process: Optional[Process] = None
        #: When not ``None``, every dispatched event appends its
        #: ``(time, sequence)`` pair here — the determinism tests use
        #: this to prove optimizations preserve event ordering.
        self._trace: Optional[List[Tuple[float, int]]] = None
        #: Runtime atomicity sanitizer (``TRAILSAN=1``), or None.
        #: Components register their atomic groups here at construction
        #: time; the dispatch loops call ``check()`` at every context
        #: switch.  Read-only checks: enabling it never changes the
        #: schedule.
        self.sanitizer: Optional[TrailSanitizer] = sanitizer_from_env()

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event-order tracing

    def enable_trace(self) -> List[Tuple[float, int]]:
        """Record ``(time, sequence)`` of every dispatched event.

        Must be called before :meth:`run`; returns the live trace list.
        """
        if self._trace is None:
            self._trace = []
        return self._trace

    @property
    def trace(self) -> Optional[List[Tuple[float, int]]]:
        """The recorded event-order trace, or None if tracing is off."""
        return self._trace

    # ------------------------------------------------------------------
    # Factories

    # trailhot: hot -- event factory, runs per simulated wakeup
    def event(self) -> Event:
        """Create a new untriggered event bound to this simulation."""
        # Inlined Event.__init__ (see docs/PERFORMANCE.md): skipping the
        # constructor frame is measurable at event-churn rates.
        event = _new_event(Event)
        event.sim = self
        event._cb1 = None
        event._callbacks = None
        event._processed = False
        event._value = _PENDING
        event._exception = None
        event._triggered = False
        event._defused = False
        return event

    # trailhot: hot -- timeout factory, runs per CPU charge / sleep
    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` ms from now with ``value``."""
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        # Inlined Timeout.__init__ — identical semantics, one less frame.
        timeout = _new_timeout(Timeout)
        timeout.sim = self
        timeout._cb1 = None
        timeout._callbacks = None
        timeout._processed = False
        timeout._value = value
        timeout._exception = None
        timeout._triggered = True
        timeout._defused = False
        timeout.delay = delay
        self._sequence = sequence = self._sequence + 1
        if delay:
            heappush(self._heap, (self._now + delay, sequence, timeout))
        else:
            self._ready.append((self._now, sequence, timeout))
        return timeout

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Sequence[Event]) -> Condition:
        """Condition event that fires when all ``events`` have fired."""
        return all_of(self, events)

    def any_of(self, events: Sequence[Event]) -> Condition:
        """Condition event that fires when any of ``events`` has fired."""
        return any_of(self, events)

    # ------------------------------------------------------------------
    # Execution

    # trailhot: hot -- the dispatch loop every simulated event crosses
    def run(self, until: Optional[float] = None) -> float:
        """Run until the queues drain or the clock reaches ``until``.

        Returns the simulation time at which execution stopped.  An
        unhandled process failure propagates out of this call.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self._now})")
        heap = self._heap
        ready = self._ready
        pop = heappop
        popleft = ready.popleft
        trace = self._trace
        sanitizer = self.sanitizer
        if until is None and trace is None and sanitizer is None:
            # Fast drain-to-empty variant: no deadline, trace, or
            # sanitizer checks in the loop, and runs of ready events are
            # drained in a batch.  Two invariants make the batch safe:
            # every entry in ``ready`` carries the same time (the
            # current ``now``), and heap pushes made by a callback are
            # strictly later than ``now`` — so once the ready head
            # precedes the heap head, the whole ready run does, and new
            # heap arrivals cannot preempt it.
            while True:
                if ready:
                    if heap:
                        heap_head = heap[0]
                        if heap_head < ready[0]:
                            when, sequence, event = pop(heap)
                        else:
                            # Batched ready drain against the cached
                            # heap head: while it is unchanged and
                            # strictly ahead of the ready run, only a
                            # float compare per event is needed.  Any
                            # push that displaces the head falls back
                            # to the full (time, sequence) compare.
                            heap_time = heap_head[0]
                            while True:
                                when, sequence, event = popleft()
                                self._now = when
                                event._processed = True
                                callback = event._cb1
                                if callback is not None:
                                    event._cb1 = None
                                    more = event._callbacks
                                    if more is None:
                                        callback(event)
                                    else:
                                        event._callbacks = None
                                        callback(event)
                                        for callback in more:
                                            callback(event)
                                if event._exception is not None \
                                        and not event._defused:
                                    raise event._exception
                                if (not ready or ready[0][0] >= heap_time
                                        or heap[0] is not heap_head):
                                    break
                            continue
                    else:
                        when, sequence, event = popleft()
                elif heap:
                    when, sequence, event = pop(heap)
                else:
                    break
                self._now = when
                event._processed = True
                callback = event._cb1
                if callback is not None:
                    event._cb1 = None
                    more = event._callbacks
                    if more is None:
                        callback(event)
                    else:
                        event._callbacks = None
                        callback(event)
                        for callback in more:
                            callback(event)
                if event._exception is not None and not event._defused:
                    raise event._exception
            return self._now
        if until is None:
            # Instrumented drain-to-empty variant (tracing or the
            # runtime sanitizer active): per-event bookkeeping, same
            # dispatch order as the fast loop.
            while True:
                # Pop the globally smallest (time, sequence) of both queues.
                if ready:
                    if heap and heap[0] < ready[0]:
                        when, sequence, event = pop(heap)
                    else:
                        when, sequence, event = popleft()
                elif heap:
                    when, sequence, event = pop(heap)
                else:
                    break
                self._now = when
                if trace is not None:
                    trace.append((when, sequence))
                # Inlined Event._run_callbacks: detach-then-invoke so a
                # callback registered mid-dispatch runs immediately.
                event._processed = True
                callback = event._cb1
                if callback is not None:
                    event._cb1 = None
                    more = event._callbacks
                    if more is None:
                        callback(event)
                    else:
                        event._callbacks = None
                        callback(event)
                        for callback in more:
                            callback(event)
                if event._exception is not None and not event._defused:
                    raise event._exception
                if sanitizer is not None:
                    sanitizer.check(self._now)
            return self._now
        while True:
            # Pop the globally smallest (time, sequence) of both queues.
            if ready:
                if heap and heap[0] < ready[0]:
                    if heap[0][0] > until:
                        self._now = until
                        return until
                    when, sequence, event = pop(heap)
                else:
                    if ready[0][0] > until:
                        self._now = until
                        return until
                    when, sequence, event = popleft()
            elif heap:
                if heap[0][0] > until:
                    self._now = until
                    return until
                when, sequence, event = pop(heap)
            else:
                break
            self._now = when
            if trace is not None:
                trace.append((when, sequence))
            event._processed = True
            callback = event._cb1
            if callback is not None:
                event._cb1 = None
                more = event._callbacks
                if more is None:
                    callback(event)
                else:
                    event._callbacks = None
                    callback(event)
                    for callback in more:
                        callback(event)
            if event._exception is not None and not event._defused:
                raise event._exception
            if sanitizer is not None:
                sanitizer.check(self._now)
        self._now = until
        return until

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or None if queues are empty."""
        if self._ready:
            if self._heap and self._heap[0] < self._ready[0]:
                return self._heap[0][0]
            return self._ready[0][0]
        if self._heap:
            return self._heap[0][0]
        return None

    # trailhot: hot -- inlined dispatch loop of every bench scenario
    def run_until(self, event: Event) -> Any:
        """Run until ``event`` has fired; returns its value.

        Unlike :meth:`run`, this terminates even when perpetual
        background processes (write-back loops, idle repositioners)
        keep the event queues non-empty.  The dispatch body is the same
        inlined loop as :meth:`run` (the per-event ``_step`` frame used
        to dominate fig3-style sync-write runs); tracing or the
        sanitizer fall back to the instrumented single-step path.
        """
        target = event
        if self._trace is not None or self.sanitizer is not None:
            while not target._processed:
                if not self._heap and not self._ready:
                    raise SimulationError(
                        "event cannot fire: the event heap is empty")
                self._step()
            return target.value
        heap = self._heap
        ready = self._ready
        pop = heappop
        popleft = ready.popleft
        while not target._processed:
            if ready:
                if heap and heap[0] < ready[0]:
                    when, _sequence, event = pop(heap)
                else:
                    when, _sequence, event = popleft()
            elif heap:
                when, _sequence, event = pop(heap)
            else:
                raise SimulationError(
                    "event cannot fire: the event heap is empty")
            self._now = when
            event._processed = True
            callback = event._cb1
            if callback is not None:
                event._cb1 = None
                more = event._callbacks
                if more is None:
                    callback(event)
                else:
                    event._callbacks = None
                    callback(event)
                    for callback in more:
                        callback(event)
            if event._exception is not None and not event._defused:
                raise event._exception
        return target.value

    def step(self) -> bool:
        """Dispatch the single next event; False when nothing is queued.

        The public single-step interface used by the ``TRAILISO``
        interleaved-instance harness: several simulations advance in
        round-robin, one dispatched event per turn.  Ordering within
        one simulation is identical to :meth:`run` / :meth:`run_until`
        (all three pop the globally smallest ``(time, sequence)``).
        """
        if not self._heap and not self._ready:
            return False
        self._step()
        return True

    # trailhot: hot_callee -- single-step dispatch behind step()/run_until
    def _step(self) -> None:
        ready = self._ready
        heap = self._heap
        if ready and not (heap and heap[0] < ready[0]):
            when, sequence, event = ready.popleft()
        else:
            when, sequence, event = heappop(heap)
        self._now = when
        if self._trace is not None:
            self._trace.append((when, sequence))
        event._run_callbacks()
        if event._exception is not None and not event._defused:
            raise event._exception
        if self.sanitizer is not None:
            self.sanitizer.check(self._now)

    # ------------------------------------------------------------------
    # Internal API used by events

    # trailhot: hot_callee -- every succeed/fail lands here
    def _schedule_event(self, event: Event, delay: float) -> None:
        self._sequence = sequence = self._sequence + 1
        if delay:
            heappush(self._heap, (self._now + delay, sequence, event))
        else:
            self._ready.append((self._now, sequence, event))
