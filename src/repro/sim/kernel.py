"""The discrete-event simulation kernel.

:class:`Simulation` owns the simulated clock and the pending-event heap.
Time is in milliseconds (``float``).  Events scheduled for the same
instant fire in scheduling order, which makes every run deterministic —
a property the recovery and batching tests rely on.

Typical use::

    sim = Simulation()

    def writer(sim, disk):
        for _ in range(10):
            yield disk.write(...)
            yield sim.timeout(2.0)

    sim.process(writer(sim, disk))
    sim.run()
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.events import Event, Timeout, Condition, all_of, any_of
from repro.sim.process import Process, ProcessGenerator


class Simulation:
    """Event scheduler and simulated clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, Event]] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Factories

    def event(self) -> Event:
        """Create a new untriggered event bound to this simulation."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` ms from now with ``value``."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Sequence[Event]) -> Condition:
        """Condition event that fires when all ``events`` have fired."""
        return all_of(self, events)

    def any_of(self, events: Sequence[Event]) -> Condition:
        """Condition event that fires when any of ``events`` has fired."""
        return any_of(self, events)

    # ------------------------------------------------------------------
    # Execution

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or the clock reaches ``until``.

        Returns the simulation time at which execution stopped.  An
        unhandled process failure propagates out of this call.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self._now})")
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when > until:
                self._now = until
                return self._now
            self._step()
        if until is not None:
            self._now = until
        return self._now

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None

    def run_until(self, event: Event) -> Any:
        """Run until ``event`` has fired; returns its value.

        Unlike :meth:`run`, this terminates even when perpetual
        background processes (write-back loops, idle repositioners)
        keep the event heap non-empty.
        """
        while not event.processed:
            if not self._heap:
                raise SimulationError(
                    "event cannot fire: the event heap is empty")
            self._step()
        return event.value

    def _step(self) -> None:
        when, _seq, event = heapq.heappop(self._heap)
        assert when >= self._now, "event scheduled in the past"
        self._now = when
        event._run_callbacks()
        if not event.ok and not event._defused:
            exc = event.exception
            assert exc is not None
            raise exc

    # ------------------------------------------------------------------
    # Internal API used by events

    def _schedule_event(self, event: Event, delay: float) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (self._now + delay, self._sequence, event))
