"""Discrete-event simulation kernel.

This package is the substrate replacing the Linux kernel's block layer
and real wall-clock time in the Trail reproduction: generator-based
processes, one-shot events, shared resources with FIFO or priority
queueing, and measurement probes.
"""

from repro.sim.control import (
    ControlledReady, DispatchPolicy, SeededShufflePolicy)
from repro.sim.events import Event, Timeout, Condition, all_of, any_of
from repro.sim.explore import (
    Explorer, ExplorationReport, IndependenceOracle, ScheduleController)
from repro.sim.kernel import Simulation
from repro.sim.perturb import PerturbedSimulation
from repro.sim.process import Interrupt, Process, ProcessGenerator
from repro.sim.resources import PriorityResource, Request, Resource, Store
from repro.sim.sanitizer import (
    TrailSanitizer, iso_from_env, sanitizer_from_env)
from repro.sim.monitor import (
    CounterSet, LatencyRecorder, PhasedLatencyRecorder, UtilizationTracker)

__all__ = [
    "Condition",
    "ControlledReady",
    "CounterSet",
    "DispatchPolicy",
    "Event",
    "ExplorationReport",
    "Explorer",
    "IndependenceOracle",
    "Interrupt",
    "LatencyRecorder",
    "PerturbedSimulation",
    "PhasedLatencyRecorder",
    "PriorityResource",
    "Process",
    "ProcessGenerator",
    "Request",
    "Resource",
    "ScheduleController",
    "SeededShufflePolicy",
    "Simulation",
    "Store",
    "Timeout",
    "TrailSanitizer",
    "UtilizationTracker",
    "all_of",
    "any_of",
    "iso_from_env",
    "sanitizer_from_env",
]
