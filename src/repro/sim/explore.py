"""Bounded systematic schedule exploration (stateless model checking).

The kernel's dispatch order is deterministic, but it is only *one* of
the legal cooperative schedules: events queued at the same simulated
time may fire in any order, and several instances interleaved through
:meth:`~repro.sim.kernel.Simulation.step` may advance in any global
order.  This module re-runs a deterministic scenario from scratch once
per schedule and systematically enumerates those choices up to a
**preemption bound**, asserting scenario-defined digests against the
canonical (all-default) run on every explored schedule.

How a schedule is named
    A schedule is a sparse set of ``(position, choice)`` decisions: at
    choice point ``position`` the controller picks ``choice`` (an
    index into the candidate list); everywhere else it picks the
    default ``0``, which reproduces the kernel's FIFO tie-break and
    ``run_interleaved``'s round-robin.  The *replay horizon* is one
    past the last decided position; new schedules are generated only
    from choice points at or past a run's horizon, so no schedule is
    ever enumerated twice.  Every non-default pick costs one
    preemption; schedules are explored while their preemption count
    stays under the bound — which is also why the sparse form is
    compact: a schedule never holds more entries than the bound.

Two kinds of choice points
    ``ready``     — which member of a ready queue's same-time front
    group dispatches next (via the shared
    :class:`~repro.sim.control.ControlledReady` hook, the same one the
    seeded perturbation harness uses);
    ``instance``  — which instance steps next in an interleaved
    multi-instance run (:func:`drive_interleaved`).
    Scenarios restrict exploration to the kinds whose outcome their
    digests are invariant under.

Static pruning (DPOR-style)
    An :class:`IndependenceOracle` — built by ``tools/trailmc`` from
    trailsan's yield-segmented generator CFGs — maps each *park key*
    (file, qualname, line of the suspended yield) to the read/write
    footprint of the segment that runs when the process resumes.  At a
    choice point, a candidate whose upcoming segment commutes with
    every already-kept candidate is pruned: dispatching it first is
    equivalent to some already-enumerated order.  Candidates that
    cannot be mapped to a footprint (unknown callbacks, unannotated
    code, escaping segments) conservatively conflict with everything,
    so imprecision reduces pruning, never coverage of a conflicting
    order.  The harness additionally *asserts* the scenario digests on
    every schedule it does run, so even an over-eager oracle cannot
    turn a divergent schedule into a silent pass.
"""

from __future__ import annotations

import os.path
from collections import deque
from dataclasses import dataclass
from typing import (
    Any, Callable, Deque, Dict, FrozenSet, List, Mapping, Optional,
    Sequence, Set, Tuple, cast)

from repro.errors import ExplorationError, ReproError
from repro.sim.control import ControlledReady, DispatchPolicy, Entry
from repro.sim.events import Condition, Event
from repro.sim.kernel import Simulation
from repro.sim.process import Process
from repro.sim.sanitizer import TrailSanitizer

#: Where a suspended process will resume: (file basename, qualname,
#: line of the yield it is parked on).  Matches the key the static
#: side (``tools/trailmc``) derives from trailsan's segment model.
SegKey = Tuple[str, str, int]

#: Park key for events whose effect cannot be mapped to a generator
#: segment (non-process callbacks, finished processes, C frames).
#: Conservatively conflicts with everything.
UNKNOWN_KEY: SegKey = ("<unknown>", "<unmapped>", 0)

#: The park keys one dispatch may resume, sorted for determinism.
KeySet = Tuple[SegKey, ...]

#: Choice-point kinds.
KIND_READY = "ready"
KIND_INSTANCE = "instance"


# ----------------------------------------------------------------------
# Runtime park-key extraction

def _generator_key(generator: Any) -> SegKey:
    """Park key of the innermost suspended frame of ``generator``."""
    hops = 0
    while hops < 64:
        sub = getattr(generator, "gi_yieldfrom", None)
        if sub is None or not hasattr(sub, "gi_frame"):
            break
        generator = sub
        hops += 1
    frame = getattr(generator, "gi_frame", None)
    if frame is None:
        return UNKNOWN_KEY
    code = frame.f_code
    qualname = str(getattr(code, "co_qualname", code.co_name))
    return (os.path.basename(code.co_filename), qualname, frame.f_lineno)


def _callback_keys(callback: Callable[[Event], None], event: Event,
                   keys: Set[SegKey]) -> None:
    owner = getattr(callback, "__self__", None)
    if isinstance(owner, Process):
        waiting = owner._waiting_on
        if waiting is not None and waiting is not event:
            return  # stale wakeup after an interrupt: resume is a no-op
        generator = owner._generator
        if generator is None:
            return  # the process already finished: resume is a no-op
        keys.add(_generator_key(generator))
        return
    if isinstance(owner, Condition):
        # Dispatching a child updates only condition-internal
        # bookkeeping; the condition completing is its own later
        # dispatch with its own choice point.
        return
    keys.add(UNKNOWN_KEY)


def event_keys(event: Event) -> KeySet:
    """Park keys of every process this event's dispatch resumes.

    An empty result means the dispatch is pure bookkeeping (it
    commutes with everything); a result containing ``UNKNOWN_KEY``
    conservatively conflicts with everything.
    """
    keys: Set[SegKey] = set()
    callback = event._cb1
    if callback is not None:
        _callback_keys(callback, event, keys)
    more = event._callbacks
    if more is not None:
        for callback in more:
            _callback_keys(callback, event, keys)
    return tuple(sorted(keys))


def _pending_keys(sim: Simulation) -> KeySet:
    """Union of park keys over the events ``sim`` could dispatch next."""
    keys: Set[SegKey] = set()
    ready = sim._ready
    if isinstance(ready, ControlledReady):
        for entry in ready.peek_group():
            keys.update(event_keys(entry[2]))
    elif ready:
        keys.update(event_keys(ready[0][2]))
    heap = sim._heap
    if heap:
        keys.update(event_keys(heap[0][2]))
    return tuple(sorted(keys))


# ----------------------------------------------------------------------
# Static independence relation

@dataclass(frozen=True)
class Footprint:
    """Read/write footprint of one yield segment over annotated state.

    Attribute names are qualified ``Class.attr``; ``locks`` maps an
    attribute to the lock held at *every* touch of it in this segment
    (absent means at least one bare touch).  ``escapes`` marks
    segments that may return out of the generator — the caller's
    continuation then runs in the same dispatch, so the footprint is
    incomplete and the segment conflicts with everything.
    """

    reads: FrozenSet[str]
    writes: FrozenSet[str]
    locks: Mapping[str, str]
    escapes: bool = False

    def commutes_with(self, other: "Footprint") -> bool:
        """Two dispatches commute iff their footprints are disjoint
        (no write on one side meets an access on the other) or every
        conflicting attribute is commonly locked on both sides."""
        if self.escapes or other.escapes:
            return False
        conflict = ((self.writes & (other.reads | other.writes))
                    | (other.writes & (self.reads | self.writes)))
        if not conflict:
            return True
        for attr in sorted(conflict):
            lock = self.locks.get(attr)
            if lock is None or lock != other.locks.get(attr):
                return False
        return True


class IndependenceOracle:
    """Answers "do these two dispatches commute?" from static footprints.

    Built from the machine-readable output of ``tools/trailmc`` (which
    never needs to be importable at runtime — the oracle consumes
    plain data).  Unknown keys never commute, so static blind spots
    cost pruning power, not soundness of the enumeration order.
    """

    def __init__(self, segments: Mapping[SegKey, Footprint]) -> None:
        self._segments: Dict[SegKey, Footprint] = dict(segments)
        self._pair_cache: Dict[Tuple[SegKey, SegKey], bool] = {}
        #: Unique key pairs resolved via static footprints / not.
        self.hits = 0
        self.misses = 0

    @classmethod
    def from_segments(
        cls, payload: Mapping[SegKey, Mapping[str, object]],
    ) -> "IndependenceOracle":
        """Build from plain data: key -> {reads, writes, locks, escapes}."""
        segments: Dict[SegKey, Footprint] = {}
        for key in sorted(payload):
            raw = payload[key]
            segments[key] = Footprint(
                reads=frozenset(cast(Sequence[str], raw.get("reads", ()))),
                writes=frozenset(cast(Sequence[str], raw.get("writes", ()))),
                locks=dict(cast(Mapping[str, str], raw.get("locks", {}))),
                escapes=bool(raw.get("escapes", False)),
            )
        return cls(segments)

    def __len__(self) -> int:
        return len(self._segments)

    def footprint(self, key: SegKey) -> Optional[Footprint]:
        return self._segments.get(key)

    def commutes(self, a: KeySet, b: KeySet) -> bool:
        """True when every pair of resumed segments commutes.

        An empty key set is a pure-bookkeeping dispatch and commutes
        with everything.
        """
        if not a or not b:
            return True
        for key_a in a:
            for key_b in b:
                if not self._pair(key_a, key_b):
                    return False
        return True

    def _pair(self, a: SegKey, b: SegKey) -> bool:
        pair = (a, b) if a <= b else (b, a)
        cached = self._pair_cache.get(pair)
        if cached is not None:
            return cached
        if a == UNKNOWN_KEY or b == UNKNOWN_KEY:
            self.misses += 1
            result = False
        else:
            fp_a = self._segments.get(a)
            fp_b = self._segments.get(b)
            if fp_a is None or fp_b is None:
                self.misses += 1
                result = False
            else:
                self.hits += 1
                result = fp_a.commutes_with(fp_b)
        self._pair_cache[pair] = result
        return result


# ----------------------------------------------------------------------
# The schedule controller

@dataclass(frozen=True)
class ChoicePoint:
    """One same-time decision the controller passed during a run."""

    position: int
    kind: str
    size: int
    chosen: int
    preemptions_before: int
    #: Per-candidate park keys; recorded only at frontier positions
    #: (at or past the replayed prefix), else empty.
    keys: Tuple[KeySet, ...]


class ScheduleController(DispatchPolicy):
    """Drives one run down a named schedule and logs its choice points.

    Doubles as the :class:`~repro.sim.control.DispatchPolicy` for every
    simulation in the run (``ready`` choice points) and as the
    instance picker for :func:`drive_interleaved` (``instance`` choice
    points); both kinds consume decisions from one stream, in
    encounter order.  Replayed positions are verified against the
    ``(kind, size)`` observed when the schedule was generated — a
    mismatch means the scenario itself is nondeterministic, which
    would invalidate the whole enumeration, so it raises immediately.
    """

    def __init__(
        self,
        decisions: Sequence[Tuple[int, int]] = (),
        *,
        expected: Sequence[Tuple[str, int]] = (),
        explore: Sequence[str] = (KIND_READY, KIND_INSTANCE),
        max_dispatches: Optional[int] = None,
    ) -> None:
        #: Sparse non-default picks, as sorted (position, choice).
        self.decisions = tuple(sorted(decisions))
        self._choices: Dict[int, int] = dict(self.decisions)
        #: One past the last decided position.  Positions below it are
        #: *replayed* (verified against ``expected``); positions at or
        #: past it are *frontier* (default pick, keys recorded).
        self.replay_limit = (self.decisions[-1][0] + 1
                             if self.decisions else 0)
        #: (kind, size) signature of the generating run's choice
        #: points.  May extend past the replay horizon (branches of one
        #: run share the parent's signature tuple); only replayed
        #: positions are verified against it.
        self._expected = tuple(expected)
        self.explore = frozenset(explore)
        self.max_dispatches = max_dispatches
        #: The decision actually taken at each choice point (replayed
        #: prefix + implicit defaults), by position.
        self.executed: List[int] = []
        #: Every choice point passed, by position.
        self.points: List[ChoicePoint] = []
        self.preemptions = 0
        self.dispatched = 0

    def _decide(self, kind: str, size: int,
                keyer: Callable[[int], KeySet]) -> int:
        if kind not in self.explore:
            return 0
        position = len(self.executed)
        keys: Tuple[KeySet, ...] = ()
        if position < self.replay_limit:
            choice = self._choices.get(position, 0)
            if position < len(self._expected):
                want_kind, want_size = self._expected[position]
                if want_kind != kind or want_size != size:
                    raise ExplorationError(
                        f"nondeterministic replay: choice point "
                        f"{position} was {want_kind}({want_size}) when "
                        f"scheduled but replayed as {kind}({size})")
            if choice >= size:
                raise ExplorationError(
                    f"nondeterministic replay: decision {choice} at "
                    f"choice point {position} exceeds {size} candidates")
        else:
            choice = 0
            keys = tuple(keyer(i) for i in range(size))
        self.executed.append(choice)
        self.points.append(ChoicePoint(
            position, kind, size, choice, self.preemptions, keys))
        if choice:
            self.preemptions += 1
        return choice

    # -- DispatchPolicy interface (ready-queue tie-breaks) -------------

    def choose(self, group: Sequence[Entry]) -> int:
        return self._decide(
            KIND_READY, len(group), lambda i: event_keys(group[i][2]))

    def on_pop(self, entry: Entry) -> None:
        self.dispatched += 1
        limit = self.max_dispatches
        if limit is not None and self.dispatched > limit:
            raise ExplorationError(
                f"schedule exceeded the dispatch budget ({limit}); "
                f"possible livelock")

    # -- Instance interleaving -----------------------------------------

    def pick_instance(self, sims: Sequence[Simulation]) -> int:
        """Which of the live instances steps next (default round-robin)."""
        if len(sims) < 2:
            return 0
        return self._decide(
            KIND_INSTANCE, len(sims), lambda i: _pending_keys(sims[i]))


# ----------------------------------------------------------------------
# Controlled execution helpers (used by scenario runners)

def install_controller(sim: Simulation,
                       controller: ScheduleController) -> Simulation:
    """Route ``sim``'s same-time tie-breaks through ``controller``.

    Installs a :class:`~repro.sim.control.ControlledReady` over the
    existing ready queue (any already-queued entries are preserved).
    """
    controlled = ControlledReady(controller)
    for entry in sim._ready:
        controlled.append(entry)
    sim._ready = cast("Deque[Entry]", controlled)
    return sim


def controlled_simulation(
    controller: ScheduleController,
    start_time: float = 0.0,
    *,
    sanitizer: Optional[TrailSanitizer] = None,
) -> Simulation:
    """A fresh traced simulation under ``controller``'s schedule.

    ``sanitizer`` (usually a fresh :class:`TrailSanitizer` per run)
    makes every explored schedule a ``TRAILSAN=1`` run regardless of
    the environment — the explorer's invariant assertions ride on it.
    """
    sim = Simulation(start_time)
    if sanitizer is not None:
        sim.sanitizer = sanitizer
    sim.enable_trace()
    return install_controller(sim, controller)


def drive(sim: Simulation, event: Event, *,
          max_dispatches: int = 1_000_000) -> None:
    """Step ``sim`` until ``event`` fires.

    Unlike :meth:`Simulation.run_until` this detects the two failure
    shapes the explorer must report: deadlock / lost wakeup (queues
    drained while the event is still pending) and livelock (dispatch
    budget exceeded).
    """
    steps = 0
    while not event.processed:
        if not sim.step():
            raise ExplorationError(
                "deadlock: awaited event can no longer fire "
                "(both event queues drained)")
        steps += 1
        if steps > max_dispatches:
            raise ExplorationError(
                f"awaited event still pending after {max_dispatches} "
                f"dispatches; possible livelock")


def drive_interleaved(
    controller: ScheduleController,
    runs: Sequence[Tuple[Simulation, Event]],
    *,
    max_dispatches: int = 1_000_000,
) -> None:
    """Controller-ordered twin of :func:`repro.core.instance.run_interleaved`.

    With an all-default schedule this reproduces round-robin exactly
    (step the head of the rotation, move it to the tail, drop it when
    its event fires); non-default ``instance`` decisions reorder which
    live instance steps next.
    """
    order: Deque[int] = deque(range(len(runs)))
    steps = 0
    while order:
        live = [i for i in order if not runs[i][1].processed]
        if not live:
            break
        pick = controller.pick_instance([runs[i][0] for i in live])
        index = live[pick]
        sim, target = runs[index]
        if not sim.step():
            raise ExplorationError(
                "deadlock: interleaved event can no longer fire "
                "(instance queues drained)")
        steps += 1
        if steps > max_dispatches:
            raise ExplorationError(
                f"interleaved events still pending after "
                f"{max_dispatches} dispatches; possible livelock")
        order.remove(index)
        if not target.processed:
            order.append(index)


# ----------------------------------------------------------------------
# The explorer

@dataclass
class RunResult:
    """What one schedule produced, as reported by the scenario runner.

    ``digests`` is the scenario-defined tuple of invariant digests
    (disk fingerprints, trace digests) that must be byte-identical on
    every explored schedule; ``failure`` carries a sanitizer
    violation, deadlock, or scenario error when the run broke.
    """

    digests: Tuple[str, ...]
    failure: Optional[str] = None
    note: str = ""


#: A scenario: builds a fresh world under the controller's schedule,
#: runs it to completion, and reports digests.  Must be deterministic
#: given the controller's decisions.
ScenarioRunner = Callable[[ScheduleController], RunResult]


@dataclass(frozen=True)
class ScheduleIssue:
    """A schedule that diverged from canonical or failed outright.

    ``decisions`` is the sparse schedule — the (position, choice)
    pairs that deviate from the all-default canonical run — so a
    failure can be replayed verbatim via
    ``ScheduleController(decisions)``.
    """

    decisions: Tuple[Tuple[int, int], ...]
    digests: Tuple[str, ...]
    failure: Optional[str]


@dataclass
class ExplorationStats:
    """Counters over one exploration."""

    schedules: int = 0
    choice_points: int = 0
    frontier_points: int = 0
    explored_branches: int = 0
    pruned_branches: int = 0
    bound_skipped: int = 0
    oracle_hits: int = 0
    oracle_misses: int = 0
    max_preemptions: int = 0
    dispatches: int = 0

    @property
    def naive_branches(self) -> int:
        """Branches a bound-respecting enumeration without static
        pruning would have enqueued from the same frontier points."""
        return self.explored_branches + self.pruned_branches

    @property
    def pruning_ratio(self) -> float:
        """Naive vs pruned branch count (1.0 = pruning did nothing)."""
        if self.explored_branches == 0:
            return 1.0
        return self.naive_branches / self.explored_branches


@dataclass
class ExplorationReport:
    """Outcome of exploring one scenario."""

    canonical: RunResult
    divergences: List[ScheduleIssue]
    failures: List[ScheduleIssue]
    stats: ExplorationStats

    @property
    def ok(self) -> bool:
        return (self.canonical.failure is None
                and not self.divergences and not self.failures)


class Explorer:
    """Depth-first bounded exploration of one scenario's schedules."""

    def __init__(
        self,
        runner: ScenarioRunner,
        *,
        oracle: Optional[IndependenceOracle] = None,
        preemption_bound: int = 2,
        budget: int = 500,
        max_dispatches: int = 1_000_000,
        stop_on_failure: bool = True,
        explore: Sequence[str] = (KIND_READY, KIND_INSTANCE),
    ) -> None:
        self._runner = runner
        self._oracle = oracle
        self._bound = preemption_bound
        self._budget = budget
        self._max_dispatches = max_dispatches
        self._stop_on_failure = stop_on_failure
        #: Which choice-point kinds are enumerated.  A scenario whose
        #: digests are only invariant under one kind (e.g. the
        #: two-instance interleave explores KIND_INSTANCE while
        #: intra-sim ready ties legitimately reorder its traces)
        #: restricts exploration to that kind.
        self._explore = tuple(explore)

    def run(self) -> ExplorationReport:
        stats = ExplorationStats()
        controller, canonical = self._execute((), ())
        stats.schedules = 1
        stats.dispatches += controller.dispatched
        report = ExplorationReport(canonical, [], [], stats)
        if canonical.failure is not None:
            report.failures.append(
                ScheduleIssue((), canonical.digests, canonical.failure))
            if self._stop_on_failure:
                return self._finish(report)
        stack: List[Tuple[Tuple[Tuple[int, int], ...],
                          Tuple[Tuple[str, int], ...]]] = []
        self._expand(controller, stack, stats)
        while stack and stats.schedules < self._budget:
            decisions, expected = stack.pop()
            controller, result = self._execute(decisions, expected)
            stats.schedules += 1
            stats.dispatches += controller.dispatched
            if controller.preemptions > stats.max_preemptions:
                stats.max_preemptions = controller.preemptions
            if result.failure is not None:
                report.failures.append(
                    ScheduleIssue(decisions, result.digests,
                                  result.failure))
                if self._stop_on_failure:
                    return self._finish(report)
            elif result.digests != canonical.digests:
                report.divergences.append(
                    ScheduleIssue(decisions, result.digests, None))
            self._expand(controller, stack, stats)
        return self._finish(report)

    # ------------------------------------------------------------------

    def _finish(self, report: ExplorationReport) -> ExplorationReport:
        oracle = self._oracle
        if oracle is not None:
            report.stats.oracle_hits = oracle.hits
            report.stats.oracle_misses = oracle.misses
        return report

    def _execute(
        self,
        decisions: Tuple[Tuple[int, int], ...],
        expected: Tuple[Tuple[str, int], ...],
    ) -> Tuple[ScheduleController, RunResult]:
        controller = ScheduleController(
            decisions, expected=expected, explore=self._explore,
            max_dispatches=self._max_dispatches)
        try:
            result = self._runner(controller)
        except ReproError as exc:
            result = RunResult(
                digests=(), failure=f"{type(exc).__name__}: {exc}")
        return controller, result

    def _expand(
        self,
        controller: ScheduleController,
        stack: List[Tuple[Tuple[Tuple[int, int], ...],
                          Tuple[Tuple[str, int], ...]]],
        stats: ExplorationStats,
    ) -> None:
        """Enqueue the alternatives this run's frontier points open.

        Frontier points (position at or past the run's replay horizon,
        keys recorded) each spawn one branch per kept non-default
        candidate.  Every branch shares the parent run's full
        ``(kind, size)`` signature tuple — replay verification stops
        at each branch's own horizon, so the shared tail is inert —
        which keeps stack memory linear in the run length instead of
        quadratic.
        """
        points = controller.points
        stats.choice_points += len(points)
        base = controller.decisions
        signature = tuple((point.kind, point.size) for point in points)
        for point in points:
            if not point.keys:
                continue  # replayed (or policy-only) position
            stats.frontier_points += 1
            if point.preemptions_before >= self._bound:
                stats.bound_skipped += point.size - 1
                continue
            member = self._persistent_members(point.keys)
            prefix = tuple(pair for pair in base
                           if pair[0] < point.position)
            for candidate in range(1, point.size):
                if member[candidate]:
                    stats.explored_branches += 1
                    stack.append(
                        (prefix + ((point.position, candidate),),
                         signature))
                else:
                    stats.pruned_branches += 1

    def _persistent_members(
            self, keys: Tuple[KeySet, ...]) -> List[bool]:
        """Closure of the default candidate under static conflicts.

        Start from the default pick; repeatedly add any candidate that
        conflicts with a member.  Candidates outside the closure
        commute with every kept one, so their first-dispatch orders
        are equivalent to an enumerated order and are pruned.
        """
        size = len(keys)
        oracle = self._oracle
        if oracle is None:
            return [True] * size
        member = [False] * size
        member[0] = True
        changed = True
        while changed:
            changed = False
            for i in range(size):
                if member[i]:
                    continue
                for j in range(size):
                    if member[j] and not oracle.commutes(keys[i], keys[j]):
                        member[i] = True
                        changed = True
                        break
        return member


__all__ = [
    "ChoicePoint",
    "Explorer",
    "ExplorationReport",
    "ExplorationStats",
    "Footprint",
    "IndependenceOracle",
    "KIND_INSTANCE",
    "KIND_READY",
    "KeySet",
    "RunResult",
    "ScenarioRunner",
    "ScheduleController",
    "ScheduleIssue",
    "SegKey",
    "UNKNOWN_KEY",
    "controlled_simulation",
    "drive",
    "drive_interleaved",
    "event_keys",
    "install_controller",
]
