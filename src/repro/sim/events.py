"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence.  Processes yield events to
wait for them; the kernel fires callbacks when an event is triggered.
:class:`Timeout` is an event pre-scheduled at a fixed delay.
:class:`Condition` composes events (:func:`all_of` / :func:`any_of`).

The design follows the classic SimPy shape but is implemented from
scratch and trimmed to what the Trail simulation needs: deterministic
ordering, value/exception propagation, and composability.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.kernel import Simulation

#: Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    Life cycle: *pending* -> *triggered* (scheduled with the kernel) ->
    *processed* (callbacks ran).  An event may succeed with a value or
    fail with an exception; waiting processes receive the value or have
    the exception thrown into them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_triggered",
                 "_defused")

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        #: Callbacks invoked (in registration order) when the event fires.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._triggered = False
        #: Set when a waiter consumed this event's failure; an un-defused
        #: failure is re-raised by the kernel so errors never pass silently.
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The event's result value (raises if not yet triggered)."""
        if self._value is _PENDING and self._exception is None:
            raise SimulationError("event value accessed before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or None if pending/succeeded."""
        return self._exception

    @property
    def defused(self) -> bool:
        """True if some waiter consumed this event's failure."""
        return self._defused

    def defuse(self) -> None:
        """Mark this event's failure as handled (kernel won't re-raise)."""
        self._defused = True

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule_event(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._exception = exception
        self.sim._schedule_event(self, delay=0.0)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event fires.

        If the event was already processed the callback runs immediately,
        which lets late waiters join without racing the kernel.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated milliseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulation", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._schedule_event(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class Condition(Event):
    """An event that fires when ``evaluate`` says enough children fired.

    The condition's value is a dict mapping each *fired* child event to
    its value, so callers can see which events completed.
    A failing child fails the whole condition immediately.
    """

    __slots__ = ("_events", "_evaluate", "_fired")

    def __init__(
        self,
        sim: "Simulation",
        events: Sequence[Event],
        evaluate: Callable[[int, int], bool],
    ) -> None:
        super().__init__(sim)
        self._events = tuple(events)
        self._evaluate = evaluate
        self._fired: List[Event] = []
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events from different sims")
        if not self._events and evaluate(0, 0):
            self.succeed({})
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            assert event.exception is not None
            event.defuse()
            self.fail(event.exception)
            return
        self._fired.append(event)
        if self._evaluate(len(self._events), len(self._fired)):
            self.succeed({fired: fired._value for fired in self._fired})


def all_of(sim: "Simulation", events: Sequence[Event]) -> Condition:
    """A condition that fires once every event in ``events`` has fired."""
    return Condition(sim, events, lambda total, fired: fired == total)


def any_of(sim: "Simulation", events: Sequence[Event]) -> Condition:
    """A condition that fires as soon as any event in ``events`` fires."""
    return Condition(sim, events, lambda total, fired: fired > 0 or total == 0)
