"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence.  Processes yield events to
wait for them; the kernel fires callbacks when an event is triggered.
:class:`Timeout` is an event pre-scheduled at a fixed delay.
:class:`Condition` composes events (:func:`all_of` / :func:`any_of`).

The design follows the classic SimPy shape but is implemented from
scratch and trimmed to what the Trail simulation needs: deterministic
ordering, value/exception propagation, and composability.

Hot-path notes (see docs/PERFORMANCE.md): almost every event in a
Trail run has exactly one waiter (the process that yielded it), so the
first callback lives in a dedicated slot (``_cb1``) and the overflow
list (``_callbacks``) is only allocated for the rare multi-waiter
event.  Scheduling is inlined into :meth:`Event.succeed` /
:meth:`Event.fail` / :class:`Timeout` so one ``yield sim.timeout(d)``
costs two function calls, not five.  None of this changes observable
semantics: callback order, sequence numbering, and error propagation
are identical to the straightforward implementation (the seeded TPC-C
trace test pins this down).
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, List, Optional, Sequence, TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.kernel import Simulation

#: Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    Life cycle: *pending* -> *triggered* (scheduled with the kernel) ->
    *processed* (callbacks ran).  An event may succeed with a value or
    fail with an exception; waiting processes receive the value or have
    the exception thrown into them.
    """

    __slots__ = ("sim", "_cb1", "_callbacks", "_processed", "_value",
                 "_exception", "_triggered", "_defused")

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        #: First registered callback; the common single-waiter case
        #: avoids allocating a list entirely.
        self._cb1: Optional[Callable[["Event"], None]] = None
        #: Second-and-later callbacks, allocated on demand.
        self._callbacks: Optional[List[Callable[["Event"], None]]] = None
        self._processed = False
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._triggered = False
        #: Set when a waiter consumed this event's failure; an un-defused
        #: failure is re-raised by the kernel so errors never pass silently.
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The event's result value (raises if not yet triggered)."""
        if self._value is _PENDING and self._exception is None:
            raise SimulationError("event value accessed before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or None if pending/succeeded."""
        return self._exception

    @property
    def defused(self) -> bool:
        """True if some waiter consumed this event's failure."""
        return self._defused

    def defuse(self) -> None:
        """Mark this event's failure as handled (kernel won't re-raise)."""
        self._defused = True

    # trailhot: hot -- inlined scheduling, runs per event trigger
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._value = value
        sim = self.sim
        sim._sequence = sequence = sim._sequence + 1
        sim._ready.append((sim._now, sequence, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._exception = exception
        sim = self.sim
        sim._sequence = sequence = sim._sequence + 1
        sim._ready.append((sim._now, sequence, self))
        return self

    # trailhot: hot -- waiter registration, runs per yield
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event fires.

        If the event was already processed the callback runs immediately,
        which lets late waiters join without racing the kernel.
        """
        if self._processed:
            callback(self)
        elif self._cb1 is None:
            self._cb1 = callback
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    # trailhot: hot_callee -- callback dispatch behind every event fire
    def _run_callbacks(self) -> None:
        # Detach all callbacks before invoking any, so a callback added
        # *during* this run executes immediately (the event is already
        # processed) — the same ordering as the list-swap implementation.
        self._processed = True
        callback = self._cb1
        if callback is None:
            return
        self._cb1 = None
        more = self._callbacks
        if more is None:
            callback(self)
        else:
            self._callbacks = None
            callback(self)
            for callback in more:
                callback(self)

    def __repr__(self) -> str:
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated milliseconds after creation."""

    __slots__ = ("delay",)

    # trailhot: hot -- born-triggered event, one per sleep/CPU charge
    def __init__(self, sim: "Simulation", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        # Inlined Event.__init__ + scheduling: a Timeout is born triggered,
        # so the generic pending-state checks are dead weight here.
        self.sim = sim
        self._cb1 = None
        self._callbacks = None
        self._processed = False
        self._value = value
        self._exception = None
        self._triggered = True
        self._defused = False
        self.delay = delay
        sim._sequence = sequence = sim._sequence + 1
        if delay:
            heappush(sim._heap, (sim._now + delay, sequence, self))
        else:
            sim._ready.append((sim._now, sequence, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class Condition(Event):
    """An event that fires when ``evaluate`` says enough children fired.

    The condition's value is a dict mapping each *fired* child event to
    its value, so callers can see which events completed.
    A failing child fails the whole condition immediately.
    """

    __slots__ = ("_events", "_evaluate", "_fired")

    def __init__(
        self,
        sim: "Simulation",
        events: Sequence[Event],
        evaluate: Callable[[int, int], bool],
    ) -> None:
        super().__init__(sim)
        self._events = tuple(events)
        self._evaluate = evaluate
        self._fired: List[Event] = []
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events from different sims")
        if not self._events and evaluate(0, 0):
            self.succeed({})
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            event._defused = True
            self.fail(event._exception)
            return
        self._fired.append(event)
        if self._evaluate(len(self._events), len(self._fired)):
            self.succeed({fired: fired._value for fired in self._fired})


def _all_fired(total: int, fired: int) -> bool:
    return fired == total


def _any_fired(total: int, fired: int) -> bool:
    return fired > 0 or total == 0


class _AllOf(Condition):
    """Count-based specialization of :func:`all_of` (no evaluate call)."""

    __slots__ = ("_remaining",)

    def __init__(self, sim: "Simulation", events: Sequence[Event]) -> None:
        # Inlined Event.__init__ — condition fan-in is hot in batching
        # and multi-terminal workloads.
        self.sim = sim
        self._cb1 = None
        self._callbacks = None
        self._processed = False
        self._value = _PENDING
        self._exception = None
        self._triggered = False
        self._defused = False
        self._events = tuple(events)
        self._evaluate = _all_fired
        self._fired = []
        self._remaining = len(self._events)
        on_child = self._on_child
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events from different sims")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            event.add_callback(on_child)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            event._defused = True
            self.fail(event._exception)
            return
        self._fired.append(event)
        self._remaining = remaining = self._remaining - 1
        if not remaining:
            self.succeed({child: child._value for child in self._fired})


class _AnyOf(Condition):
    """First-child specialization of :func:`any_of`."""

    __slots__ = ()

    def __init__(self, sim: "Simulation", events: Sequence[Event]) -> None:
        self.sim = sim
        self._cb1 = None
        self._callbacks = None
        self._processed = False
        self._value = _PENDING
        self._exception = None
        self._triggered = False
        self._defused = False
        self._events = tuple(events)
        self._evaluate = _any_fired
        self._fired = []
        on_child = self._on_child
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events from different sims")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            event.add_callback(on_child)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            event._defused = True
            self.fail(event._exception)
            return
        self._fired.append(event)
        self.succeed({event: event._value})


def all_of(sim: "Simulation", events: Sequence[Event]) -> Condition:
    """A condition that fires once every event in ``events`` has fired."""
    return _AllOf(sim, events)


def any_of(sim: "Simulation", events: Sequence[Event]) -> Condition:
    """A condition that fires as soon as any event in ``events`` fires."""
    return _AnyOf(sim, events)
