"""Shared-resource primitives built on the event kernel.

The disk simulator and drivers use these to model request queues:

* :class:`Resource` — ``capacity`` concurrent holders, FIFO waiters.
  Models a disk that can service one command at a time.
* :class:`PriorityResource` — like :class:`Resource` but waiters are
  served lowest-priority-value first (FIFO within a priority level).
  Models Trail's "data-disk reads preempt queued writes" policy (§4.3).
* :class:`Store` — an unbounded FIFO of items with blocking ``get``.
  Models the log-disk request queue that the batching logic drains.

Requests are events; a process acquires with ``yield resource.request()``
and must eventually call ``resource.release(request)``.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Deque, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim.events import Event, _PENDING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulation


class Request(Event):
    """A pending or granted claim on a :class:`Resource`."""

    __slots__ = ("resource", "priority", "enqueued_at", "granted_at",
                 "cylinder")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        # Inlined Event.__init__ — a request is built per disk command,
        # and the extra constructor frame is measurable at that rate.
        sim = resource.sim
        self.sim = sim
        self._cb1 = None
        self._callbacks = None
        self._processed = False
        self._value = _PENDING
        self._exception = None
        self._triggered = False
        self._defused = False
        self.resource = resource
        self.priority = priority
        self.enqueued_at = sim.now
        self.granted_at: Optional[float] = None
        #: Target cylinder, set by position-aware schedulers (elevator).
        self.cylinder = 0

    @property
    def wait_time(self) -> Optional[float]:
        """Queueing delay experienced by this request, if granted."""
        if self.granted_at is None:
            return None
        return self.granted_at - self.enqueued_at


class Resource:
    """A resource with fixed capacity and FIFO waiters."""

    def __init__(self, sim: "Simulation", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._holders: List[Request] = []
        self._waiters: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted requests."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting to be granted."""
        return len(self._waiters)

    # trailhot: hot -- per-disk-command queue entry
    def request(self, priority: int = 0) -> Request:
        """Claim the resource; the returned event fires when granted.

        An idle resource grants synchronously without touching the
        waiter queue — same grant order and timestamps as going through
        ``_enqueue``/``_dispatch``, minus two frames per command.
        """
        req = Request(self, priority)
        holders = self._holders
        if not self._waiters and len(holders) < self.capacity:
            req.granted_at = self.sim.now
            holders.append(req)
            req.succeed(req)
            return req
        self._enqueue(req)
        self._dispatch()
        return req

    def release(self, request: Request) -> None:
        """Release a granted request, waking the next waiter if any."""
        if request not in self._holders:
            if self._remove_waiter(request):
                return  # cancelled while still queued
            raise SimulationError("release() of a request that is not held")
        self._holders.remove(request)
        self._dispatch()

    def cancel(self, request: Request) -> bool:
        """Withdraw a queued request.  Returns False if already granted."""
        return self._remove_waiter(request)

    # -- queue discipline hooks ----------------------------------------

    def _enqueue(self, req: Request) -> None:
        self._waiters.append(req)

    def _pop_next(self) -> Request:
        return self._waiters.popleft()

    def _remove_waiter(self, req: Request) -> bool:
        try:
            self._waiters.remove(req)
            return True
        except ValueError:
            return False

    def _dispatch(self) -> None:
        while self._waiters and len(self._holders) < self.capacity:
            req = self._pop_next()
            req.granted_at = self.sim.now
            self._holders.append(req)
            req.succeed(req)


class PriorityResource(Resource):
    """A resource whose waiters are granted lowest priority value first.

    Ties are broken FIFO.  Trail uses priority 0 for data-disk reads and
    priority 1 for data-disk write-backs so reads never queue behind the
    write-back stream.
    """

    def __init__(self, sim: "Simulation", capacity: int = 1) -> None:
        super().__init__(sim, capacity)
        self._pq: List[Tuple[int, int, Request]] = []
        self._counter = itertools.count()

    @property
    def queue_length(self) -> int:
        return len(self._pq)

    # trailhot: hot -- per-disk-command queue entry (priority variant)
    def request(self, priority: int = 0) -> Request:
        """Like :meth:`Resource.request`, with the idle fast path
        checking the priority heap instead of the FIFO deque."""
        req = Request(self, priority)
        holders = self._holders
        if not self._pq and len(holders) < self.capacity:
            req.granted_at = self.sim.now
            holders.append(req)
            req.succeed(req)
            return req
        self._enqueue(req)
        self._dispatch()
        return req

    def _enqueue(self, req: Request) -> None:
        heapq.heappush(self._pq, (req.priority, next(self._counter), req))

    def _pop_next(self) -> Request:
        return heapq.heappop(self._pq)[2]

    def _remove_waiter(self, req: Request) -> bool:
        for index, (_prio, _seq, queued) in enumerate(self._pq):
            if queued is req:
                self._pq.pop(index)
                heapq.heapify(self._pq)
                return True
        return False

    def _dispatch(self) -> None:
        while self._pq and len(self._holders) < self.capacity:
            req = self._pop_next()
            req.granted_at = self.sim.now
            self._holders.append(req)
            req.succeed(req)


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that fires with the
    oldest item as soon as one is available.  ``drain`` removes and
    returns every queued item synchronously — this is exactly the
    operation Trail's interrupt handler performs when it batches "all
    the requests currently in the log disk queue" (§4.2).
    """

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> Tuple[Any, ...]:
        """Snapshot of queued items, oldest first."""
        return tuple(self._items)

    def put(self, item: Any) -> None:
        """Append ``item``; wakes the oldest blocked getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the oldest item once available."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def drain(self) -> List[Any]:
        """Remove and return all queued items (may be empty)."""
        items = list(self._items)
        self._items.clear()
        return items
