"""Seeded ready-queue tie-break perturbation.

The kernel dispatches same-time events in scheduling (sequence) order.
Correct components must not *depend* on that tie-break: any total
order consistent with simulated time is a legal cooperative schedule,
and state that survives every such order is what the trailsan
annotations promise.  :class:`PerturbedSimulation` makes the promise
testable: it replaces the immediate-event FIFO with a heap whose
same-time ordering is keyed by a **seeded** RNG draw, so each seed
explores a different (but reproducible) interleaving of same-time
events while cross-time ordering stays exact.

``Event.succeed``/``fail`` and zero-delay timeouts append to
``sim._ready`` directly (the inlined hot path), so the perturbation
wraps the queue object itself rather than hooking ``_schedule_event``
— every immediate event goes through the shuffled heap no matter
which code path scheduled it.

Use it exactly like :class:`~repro.sim.kernel.Simulation`::

    sim = PerturbedSimulation(seed=7)
    ...
    sim.run()

Same seed, same schedule; different seed, different same-time order.
"""

from __future__ import annotations

from heapq import heappop, heappush
from random import Random
from typing import Deque, List, Tuple, cast

from repro.sim.events import Event
from repro.sim.kernel import Simulation

_Entry = Tuple[float, int, Event]


class _PerturbedReady:
    """Drop-in for the kernel's ready deque with shuffled tie-breaks.

    Internally a heap keyed ``(when, draw, arrival, event)`` where
    ``draw`` is a seeded RNG sample: events at different times keep
    their time order, events at the same time pop in seeded-random
    order.  ``arrival`` breaks draw collisions deterministically.
    Only the deque operations the kernel uses are provided (truth
    value, ``[0]``, ``append``, ``popleft``).
    """

    __slots__ = ("_heap", "_rng", "_arrivals")

    def __init__(self, rng: Random) -> None:
        self._heap: List[Tuple[float, float, int, int, Event]] = []
        self._rng = rng
        self._arrivals = 0

    def append(self, item: _Entry) -> None:
        when, sequence, event = item
        self._arrivals += 1
        heappush(self._heap,
                 (when, self._rng.random(), self._arrivals, sequence,
                  event))

    def popleft(self) -> _Entry:
        when, _draw, _arrival, sequence, event = heappop(self._heap)
        return when, sequence, event

    def __getitem__(self, index: int) -> _Entry:
        when, _draw, _arrival, sequence, event = self._heap[index]
        return when, sequence, event

    def __len__(self) -> int:
        return len(self._heap)


class PerturbedSimulation(Simulation):
    """A :class:`Simulation` with seeded same-time dispatch shuffling."""

    def __init__(self, seed: int, start_time: float = 0.0) -> None:
        super().__init__(start_time)
        self.seed = seed
        # The kernel only uses the deque subset _PerturbedReady
        # provides; the cast keeps the hot loop's declared type intact.
        self._ready = cast("Deque[_Entry]", _PerturbedReady(Random(seed)))
