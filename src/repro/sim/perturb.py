"""Seeded ready-queue tie-break perturbation.

The kernel dispatches same-time events in scheduling (sequence) order.
Correct components must not *depend* on that tie-break: any total
order consistent with simulated time is a legal cooperative schedule,
and state that survives every such order is what the trailsan
annotations promise.  :class:`PerturbedSimulation` makes the promise
testable: it installs a :class:`~repro.sim.control.SeededShufflePolicy`
on the shared :class:`~repro.sim.control.ControlledReady` hook, so
each seed explores a different (but reproducible) interleaving of
same-time events while cross-time ordering stays exact.

The same hook drives the bounded schedule explorer
(:mod:`repro.sim.explore`); perturbation is simply the "random walk"
policy where the explorer is the "systematic enumeration" one.

Use it exactly like :class:`~repro.sim.kernel.Simulation`::

    sim = PerturbedSimulation(seed=7)
    ...
    sim.run()

Same seed, same schedule; different seed, different same-time order.
"""

from __future__ import annotations

from random import Random
from typing import Deque, cast

from repro.sim.control import ControlledReady, Entry, SeededShufflePolicy
from repro.sim.kernel import Simulation


class PerturbedSimulation(Simulation):
    """A :class:`Simulation` with seeded same-time dispatch shuffling."""

    def __init__(self, seed: int, start_time: float = 0.0) -> None:
        super().__init__(start_time)
        self.seed = seed
        # The kernel only uses the deque subset ControlledReady
        # provides; the cast keeps the hot loop's declared type intact.
        self._ready = cast(
            "Deque[Entry]",
            ControlledReady(SeededShufflePolicy(Random(seed))))
