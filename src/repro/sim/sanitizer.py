"""Runtime atomicity sanitizer (the dynamic half of trailsan).

The static pass (``tools/trailsan``) proves the *code shape* keeps
annotated invariants inside one atomic segment; this module checks the
*values* at runtime.  When the ``TRAILSAN`` environment variable is
set (to anything but ``0``), :class:`~repro.sim.kernel.Simulation`
creates a :class:`TrailSanitizer` and calls :meth:`TrailSanitizer.check`
after **every** dispatched event — i.e. at every point where control
can switch between processes.  Components register their declared
atomic groups at construction time; a group observed torn at a context
switch raises :class:`~repro.errors.SanitizerError` immediately, with
the simulated time and the violated invariant in the message.

Two registration forms cover the annotated groups:

* :meth:`TrailSanitizer.add_invariant` — a stateless predicate over
  current values (e.g. ``pinned_bytes`` must equal the sum of pinned
  page sizes).
* :meth:`TrailSanitizer.add_transition` — a ``probe`` snapshots a
  value tuple at every context switch and a ``judge`` compares the
  previous snapshot with the new one (e.g. a record may enter the
  live tail only in the same segment that moves the chain link).

The sanitizer deliberately has no effect on event ordering or timing:
it only *reads* state, so a ``TRAILSAN=1`` run replays the exact same
schedule as a plain run.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Tuple

from repro.errors import SanitizerError

#: A stateless invariant: returns None when healthy, else a message.
Invariant = Callable[[], Optional[str]]
#: Snapshots the watched values at a context switch.
Probe = Callable[[], Tuple[object, ...]]
#: Compares consecutive snapshots: None when healthy, else a message.
Judge = Callable[[Tuple[object, ...], Tuple[object, ...]], Optional[str]]


class _InvariantGroup:
    __slots__ = ("name", "invariant")

    def __init__(self, name: str, invariant: Invariant) -> None:
        self.name = name
        self.invariant = invariant

    def verify(self) -> Optional[str]:
        return self.invariant()


class _TransitionGroup:
    __slots__ = ("name", "probe", "judge", "_last")

    def __init__(self, name: str, probe: Probe, judge: Judge) -> None:
        self.name = name
        self.probe = probe
        self.judge = judge
        self._last: Optional[Tuple[object, ...]] = None

    def verify(self) -> Optional[str]:
        snapshot = self.probe()
        last = self._last
        self._last = snapshot
        if last is None or last == snapshot:
            return None
        return self.judge(last, snapshot)


class TrailSanitizer:
    """Checks declared atomic groups at every context switch."""

    def __init__(self) -> None:
        self._groups: List[object] = []
        self._verifiers: List[Callable[[], Optional[str]]] = []
        #: Context switches inspected (for tests and smoke reporting).
        self.checks = 0
        #: Group registrations, by name (duplicates allowed: several
        #: drivers in one sim each register their own instance).
        self.group_names: List[str] = []

    def add_invariant(self, name: str, invariant: Invariant) -> None:
        """Register a stateless invariant checked at every switch."""
        group = _InvariantGroup(name, invariant)
        self._groups.append(group)
        self._verifiers.append(group.verify)
        self.group_names.append(name)

    def add_transition(self, name: str, probe: Probe,
                       judge: Judge) -> None:
        """Register a snapshot/compare check over consecutive switches."""
        group = _TransitionGroup(name, probe, judge)
        self._groups.append(group)
        self._verifiers.append(group.verify)
        self.group_names.append(name)

    def check(self, now: float) -> None:
        """Verify every group; raise SanitizerError on the first tear."""
        self.checks += 1
        index = 0
        for verify in self._verifiers:
            message = verify()
            if message is not None:
                name = self.group_names[index]
                raise SanitizerError(
                    f"atomic_group({name}) observed torn at "
                    f"t={now:.6f}ms: {message}")
            index += 1


def sanitizer_from_env() -> Optional[TrailSanitizer]:
    """A fresh sanitizer when ``TRAILSAN`` is enabled, else None."""
    flag = os.environ.get("TRAILSAN", "")
    if flag == "" or flag == "0":
        return None
    return TrailSanitizer()


def iso_from_env() -> bool:
    """True when ``TRAILISO`` is enabled.

    The runtime twin of ``tools/trailiso``: test suites widen their
    interleaved multi-instance matrices when this is set.  Like
    ``TRAILSAN``, any value but empty/``0`` enables it.  This module
    is the one sanctioned perimeter for ambient environment reads
    (TIS004) — everything downstream takes plain parameters.
    """
    flag = os.environ.get("TRAILISO", "")
    return flag != "" and flag != "0"
