"""A log-structured-file-system-style driver (related-work comparator).

Section 2 of the paper positions Trail against LFS: LFS batches
*asynchronous* writes into segments, but a *synchronous* write cannot
wait for a segment to fill — it must be forced to the log tail at
once, and "all disk writes still incur rotational latency" because the
target sector's angular position is whatever it happens to be.  LFS
also pays cleaning: reclaiming a segment requires reading its live
blocks off the disk and rewriting them at the tail, whereas Trail
write-backs come from host memory.

This driver implements that model: the disk is divided into fixed
segments appended in sequence, a mapping table tracks each logical
block's current physical location, and a threshold-driven cleaner
copies live blocks out of the oldest segments.  It exists so the
benchmark suite can measure the comparison the paper argues
qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Mapping, Tuple

from repro.blockdev import BlockDevice, DataTarget
from repro.disk.controller import PRIORITY_READ, PRIORITY_WRITE
from repro.errors import TrailError
from repro.sim import Event, LatencyRecorder, Resource, Simulation


@dataclass
class LfsStats:
    """Measurements for the LFS-style driver."""

    sync_writes: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder(keep_samples=True))
    reads: int = 0
    logical_writes: int = 0
    segments_cleaned: int = 0
    live_sectors_copied: int = 0

    @property
    def logging_io_ms(self) -> float:
        return self.sync_writes.total


@dataclass
class _Segment:
    """Bookkeeping for one on-disk segment."""

    index: int
    live_sectors: int = 0


class LfsDriver(BlockDevice):
    """Append-only data layout with threshold-driven cleaning."""

    def __init__(
        self,
        sim: Simulation,
        data_disks: Mapping[int, DataTarget],
        segment_sectors: int = 512,
        clean_threshold: float = 0.25,
    ) -> None:
        if len(data_disks) != 1:
            raise TrailError(
                "the LFS comparator manages exactly one disk")
        if segment_sectors < 8:
            raise TrailError(
                f"segment must be >= 8 sectors, got {segment_sectors}")
        self.sim = sim
        self.data_disks: Dict[int, DataTarget] = dict(data_disks)
        self._disk_id, self._disk = next(iter(self.data_disks.items()))
        self.segment_sectors = segment_sectors
        self.clean_threshold = clean_threshold
        self.stats = LfsStats()

        total = self._disk.geometry.total_sectors
        self._segment_count = total // segment_sectors
        if self._segment_count < 4:
            raise TrailError("disk too small for 4 segments")
        #: logical LBA -> physical LBA of its newest version.
        self._mapping: Dict[int, int] = {}
        #: physical LBA -> logical LBA (for cleaning).
        self._reverse: Dict[int, int] = {}
        self._segments: List[_Segment] = [
            _Segment(index) for index in range(self._segment_count)]
        self._free_segments: List[int] = list(range(1, self._segment_count))
        self._current_segment = 0
        self._tail = 0  # physical LBA of the next append
        #: Serializes log-tail appends (a single log head position).
        self._tail_lock = Resource(sim, capacity=1)

    # ------------------------------------------------------------------

    @property
    def sector_size(self) -> int:
        return self._disk.geometry.sector_size

    @property
    def free_fraction(self) -> float:
        """Fraction of segments still free."""
        return len(self._free_segments) / self._segment_count

    def write(self, lba: int, data: bytes, disk_id: int = 0) -> Event:
        """Synchronous write: force the blocks to the log tail."""
        self._check_disk(disk_id)
        if not data:
            raise TrailError("cannot write an empty extent")
        self.stats.logical_writes += 1
        return self.sim.process(self._write(lba, data),
                                name=f"lfs-write@{lba}")

    def read(self, lba: int, nsectors: int, disk_id: int = 0) -> Event:
        """Read via the mapping table (may be physically scattered)."""
        self._check_disk(disk_id)
        self.stats.reads += 1
        return self.sim.process(self._read(lba, nsectors),
                                name=f"lfs-read@{lba}")

    def flush(self) -> Generator:
        """All writes are forced synchronously; nothing to flush."""
        return
        yield  # pragma: no cover

    # ------------------------------------------------------------------

    def _write(self, lba: int, data: bytes) -> Generator:
        start = self.sim.now
        sector_size = self.sector_size
        nsectors = (len(data) + sector_size - 1) // sector_size
        padded = data + bytes(nsectors * sector_size - len(data))

        token = self._tail_lock.request()
        yield token
        try:
            written = 0
            while written < nsectors:
                room = self._segment_end() - self._tail
                if room == 0:
                    yield from self._open_next_segment()
                    room = self._segment_end() - self._tail
                take = min(nsectors - written, room)
                physical = self._tail
                chunk = padded[written * sector_size:
                               (written + take) * sector_size]
                yield self._disk.write(physical, chunk,
                                       priority=PRIORITY_READ)
                for offset in range(take):
                    self._install(lba + written + offset, physical + offset)
                self._tail += take
                written += take
        finally:
            self._tail_lock.release(token)

        latency = self.sim.now - start
        self.stats.sync_writes.record(latency)
        return latency

    def _read(self, lba: int, nsectors: int) -> Generator:
        sector_size = self.sector_size
        chunks: List[bytes] = []
        # Coalesce physically contiguous runs into single disk reads.
        runs: List[Tuple[int, int]] = []  # (physical start, count)
        for offset in range(nsectors):
            physical = self._mapping.get(lba + offset)
            if physical is None:
                physical = -1  # never written: sparse zero sector
            if runs and physical >= 0 and runs[-1][0] >= 0 and \
                    physical == runs[-1][0] + runs[-1][1]:
                runs[-1] = (runs[-1][0], runs[-1][1] + 1)
            elif runs and physical < 0 and runs[-1][0] < 0:
                runs[-1] = (-1, runs[-1][1] + 1)
            else:
                runs.append((physical, 1))
        for physical, count in runs:
            if physical < 0:
                chunks.append(bytes(count * sector_size))
            else:
                result = yield self._disk.read(physical, count,
                                               priority=PRIORITY_READ)
                chunks.append(result.data)
        return b"".join(chunks)

    # ------------------------------------------------------------------
    # Segment management

    def _segment_end(self) -> int:
        return (self._current_segment + 1) * self.segment_sectors

    def _install(self, logical: int, physical: int) -> None:
        old = self._mapping.get(logical)
        if old is not None:
            self._segments[old // self.segment_sectors].live_sectors -= 1
            self._reverse.pop(old, None)
        self._mapping[logical] = physical
        self._reverse[physical] = logical
        self._segments[physical // self.segment_sectors].live_sectors += 1

    def _open_next_segment(self) -> Generator:
        if not self._free_segments:
            yield from self._clean(min_segments=1)
        if not self._free_segments:
            raise TrailError("LFS disk is full of live data")
        self._current_segment = self._free_segments.pop(0)
        self._tail = self._current_segment * self.segment_sectors
        if self.free_fraction < self.clean_threshold:
            yield from self._clean(min_segments=2)

    def _clean(self, min_segments: int) -> Generator:
        """Copy live blocks out of the emptiest old segments.

        Each cleaned segment costs a disk read of its live sectors and
        a disk write appending them at the tail — the garbage-collection
        overhead the paper contrasts with Trail's free FIFO reclamation.
        """
        candidates = sorted(
            (segment for segment in self._segments
             if segment.index != self._current_segment
             and segment.index not in self._free_segments),
            key=lambda segment: segment.live_sectors)
        cleaned = 0
        for segment in candidates:
            if cleaned >= min_segments:
                break
            base = segment.index * self.segment_sectors
            live = [
                (physical, self._reverse[physical])
                for physical in range(base, base + self.segment_sectors)
                if physical in self._reverse
            ]
            for physical, logical in live:
                result = yield self._disk.read(physical, 1,
                                               priority=PRIORITY_WRITE)
                self.stats.live_sectors_copied += 1
                room = self._segment_end() - self._tail
                if room == 0:
                    if not self._free_segments:
                        raise TrailError("LFS cleaner ran out of space")
                    self._current_segment = self._free_segments.pop(0)
                    self._tail = (self._current_segment
                                  * self.segment_sectors)
                yield self._disk.write(self._tail, result.data,
                                       priority=PRIORITY_WRITE)
                self._install(logical, self._tail)
                self._tail += 1
            segment.live_sectors = 0
            self._free_segments.append(segment.index)
            self.stats.segments_cleaned += 1
            cleaned += 1

    def _check_disk(self, disk_id: int) -> None:
        if disk_id != self._disk_id:
            raise TrailError(f"unknown data disk id {disk_id}")
