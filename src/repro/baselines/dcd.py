"""DCD — Disk Caching Disk (Hu & Yang, ISCA '96): the other §2 baseline.

DCD interposes a two-level cache in front of the data disk: a small
**NVRAM** buffer absorbs small writes at memory speed, and when it
fills, its contents are flushed as one large sequential write to a
dedicated **cache disk** laid out as a log.  Data migrates from the
cache disk to its home location on the data disk in the background
(destaging).  Reads check NVRAM, then the cache-disk map, then the
data disk.

The paper's §2 comparison points, which this implementation lets the
benchmarks measure:

* DCD's write latency is essentially NVRAM latency — *better* than
  Trail's — but it "requires extra hardware (NVRAM)", which is the
  cost Trail avoids; and once the NVRAM is full, writes stall behind a
  cache-disk flush.
* Destaging reads data back *from the cache disk* before writing it to
  the data disk (like LFS cleaning), where Trail's write-backs come
  from host memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Mapping, Optional, Tuple

from repro.blockdev import BlockDevice, DataTarget
from repro.disk.controller import PRIORITY_READ, PRIORITY_WRITE
from repro.disk.drive import DiskDrive
from repro.errors import TrailError
from repro.sim import (
    Event, Interrupt, LatencyRecorder, Process, Simulation)
from repro.units import microseconds


@dataclass
class DcdStats:
    """Measurements for the DCD driver."""

    sync_writes: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder(keep_samples=True))
    reads: int = 0
    logical_writes: int = 0
    nvram_hits: int = 0
    nvram_stalls: int = 0
    cache_disk_flushes: int = 0
    destaged_sectors: int = 0
    cache_disk_reads_for_destage: int = 0

    @property
    def logging_io_ms(self) -> float:
        return self.sync_writes.total


class DcdDriver(BlockDevice):
    """NVRAM + log-structured cache disk + data disk."""

    def __init__(
        self,
        sim: Simulation,
        cache_disk: DiskDrive,
        data_disks: Mapping[int, DataTarget],
        nvram_bytes: int = 512 * 1024,
        nvram_write_us: float = 10.0,
        destage_idle_ms: float = 20.0,
    ) -> None:
        if not data_disks:
            raise TrailError("DCD needs at least one data disk")
        if nvram_bytes < 4096:
            raise TrailError("NVRAM must be >= 4 KiB")
        self.sim = sim
        self.cache_disk = cache_disk
        self.data_disks: Dict[int, DataTarget] = dict(data_disks)
        self.nvram_bytes = nvram_bytes
        self.nvram_write_ms = microseconds(nvram_write_us)
        self.destage_idle_ms = destage_idle_ms
        self.stats = DcdStats()

        #: NVRAM contents: (disk_id, lba) -> sector bytes.
        self._nvram: Dict[Tuple[int, int], bytes] = {}
        self._nvram_used = 0
        #: Cache-disk map: (disk_id, lba) -> cache-disk LBA.
        self._cache_map: Dict[Tuple[int, int], int] = {}
        #: Destage queue of (disk_id, lba, cache_lba), oldest first.
        self._destage_queue: List[Tuple[int, int, int]] = []
        self._cache_tail = 0
        self._flush_in_progress: Optional[Event] = None
        self._destager: Optional[Process] = None
        self._last_activity = 0.0

    # ------------------------------------------------------------------

    @property
    def sector_size(self) -> int:
        return self.cache_disk.geometry.sector_size

    @property
    def nvram_fill(self) -> float:
        """Fraction of the NVRAM currently occupied."""
        return self._nvram_used / self.nvram_bytes

    def start(self) -> None:
        """Launch the background destager."""
        if self._destager is None or not self._destager.is_alive:
            self._destager = self.sim.process(self._destage_loop(),
                                              name="dcd-destager")

    def stop(self) -> None:
        """Stop the destager (shutdown/crash)."""
        if self._destager is not None and self._destager.is_alive:
            self._destager.interrupt("stop")
        self._destager = None

    # ------------------------------------------------------------------
    # Block-device interface

    def write(self, lba: int, data: bytes, disk_id: int = 0) -> Event:
        """Durable once in NVRAM (battery-backed); may stall on a
        cache-disk flush when the NVRAM is full."""
        self._check_disk(disk_id)
        if not data:
            raise TrailError("cannot write an empty extent")
        self.stats.logical_writes += 1
        return self.sim.process(self._write(disk_id, lba, data),
                                name=f"dcd-write@{lba}")

    def read(self, lba: int, nsectors: int, disk_id: int = 0) -> Event:
        """NVRAM, then cache disk, then the data disk."""
        self._check_disk(disk_id)
        self.stats.reads += 1
        return self.sim.process(self._read(disk_id, lba, nsectors),
                                name=f"dcd-read@{lba}")

    def flush(self) -> Generator:
        """Drain NVRAM and the destage queue completely."""
        while self._nvram or self._destage_queue \
                or self._flush_in_progress is not None:
            if self._nvram and self._flush_in_progress is None:
                yield from self._flush_nvram()
            else:
                yield self.sim.timeout(1.0)

    # ------------------------------------------------------------------

    def _write(self, disk_id: int, lba: int, data: bytes) -> Generator:
        started = self.sim.now
        sector_size = self.sector_size
        nsectors = (len(data) + sector_size - 1) // sector_size
        padded = data + bytes(nsectors * sector_size - len(data))

        needed = nsectors * sector_size
        while self._nvram_used + needed > self.nvram_bytes:
            # NVRAM full: the incoming write stalls behind a flush —
            # DCD's burst-absorption limit.
            self.stats.nvram_stalls += 1
            if self._flush_in_progress is None:
                yield from self._flush_nvram()
            else:
                yield self._flush_in_progress

        yield self.sim.timeout(self.nvram_write_ms * nsectors)
        for index in range(nsectors):
            key = (disk_id, lba + index)
            if key not in self._nvram:
                self._nvram_used += sector_size
            self._nvram[key] = padded[index * sector_size:
                                      (index + 1) * sector_size]
        self._last_activity = self.sim.now
        latency = self.sim.now - started
        self.stats.sync_writes.record(latency)
        return latency

    def _flush_nvram(self) -> Generator:
        """One large sequential write of the NVRAM contents to the
        cache disk's log tail."""
        if not self._nvram:
            return
        done = self.sim.event()
        self._flush_in_progress = done
        try:
            entries = sorted(self._nvram.items())
            payload = b"".join(sector for _key, sector in entries)
            total = self.cache_disk.geometry.total_sectors
            if self._cache_tail + len(entries) > total:
                self._cache_tail = 0  # wrap the log
            tail = self._cache_tail
            self._cache_tail += len(entries)
            yield self.cache_disk.write(tail, payload,
                                        priority=PRIORITY_WRITE)
            for index, (key, _sector) in enumerate(entries):
                stale = self._cache_map.pop(key, None)
                if stale is not None:
                    # Superseded cache copy: drop its destage entry.
                    self._destage_queue = [
                        entry for entry in self._destage_queue
                        if (entry[0], entry[1]) != key]
                self._cache_map[key] = tail + index
                self._destage_queue.append((key[0], key[1], tail + index))
            self._nvram.clear()
            self._nvram_used = 0
            self.stats.cache_disk_flushes += 1
        finally:
            self._flush_in_progress = None
            done.succeed()

    def _read(self, disk_id: int, lba: int, nsectors: int) -> Generator:
        sector_size = self.sector_size
        out = bytearray()
        for index in range(nsectors):
            key = (disk_id, lba + index)
            if key in self._nvram:
                self.stats.nvram_hits += 1
                out += self._nvram[key]
            elif key in self._cache_map:
                result = yield self.cache_disk.read(
                    self._cache_map[key], 1, priority=PRIORITY_READ)
                out += result.data
            else:
                result = yield self.data_disks[disk_id].read(
                    lba + index, 1, priority=PRIORITY_READ)
                out += result.data
        return bytes(out)

    def _destage_loop(self) -> Generator:
        """Move cache-disk blocks to their home locations when idle.

        Unlike Trail's write-back (which copies from host memory), DCD
        must *read the cache disk* first — the §2 cleaning-cost point.
        """
        try:
            while True:
                yield self.sim.timeout(self.destage_idle_ms)
                if not self._destage_queue:
                    continue
                if self.sim.now - self._last_activity \
                        < self.destage_idle_ms:
                    continue  # stay out of the foreground's way
                disk_id, lba, cache_lba = self._destage_queue.pop(0)
                if self._cache_map.get((disk_id, lba)) != cache_lba:
                    continue  # superseded while queued
                result = yield self.cache_disk.read(
                    cache_lba, 1, priority=PRIORITY_WRITE)
                self.stats.cache_disk_reads_for_destage += 1
                yield self.data_disks[disk_id].write(
                    lba, result.data, priority=PRIORITY_WRITE)
                self.stats.destaged_sectors += 1
                if self._cache_map.get((disk_id, lba)) == cache_lba:
                    del self._cache_map[(disk_id, lba)]
        except Interrupt:
            return

    def _check_disk(self, disk_id: int) -> None:
        if disk_id not in self.data_disks:
            raise TrailError(f"unknown data disk id {disk_id}")
