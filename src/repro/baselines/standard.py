"""The standard disk subsystem baseline ("EXT2" / Linux in the paper).

Every synchronous write goes straight to its data disk at its real
address and completes only when the in-place write finishes — paying
the full seek plus rotational latency that Trail eliminates.  Reads go
to the same disks; reads and writes share each drive's FIFO queue with
equal priority, like a plain disk driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Mapping

from repro.blockdev import BlockDevice, DataTarget
from repro.disk.controller import PRIORITY_READ
from repro.errors import TrailError
from repro.sim import Event, LatencyRecorder, Simulation


@dataclass
class StandardStats:
    """Measurements for the baseline driver."""

    sync_writes: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder(keep_samples=True))
    reads: int = 0
    logical_writes: int = 0

    @property
    def logging_io_ms(self) -> float:
        """Total time callers spent blocked on synchronous writes."""
        return self.sync_writes.total


class StandardDriver(BlockDevice):
    """In-place synchronous writes: the paper's comparison baseline."""

    def __init__(self, sim: Simulation,
                 data_disks: Mapping[int, DataTarget]) -> None:
        if not data_disks:
            raise TrailError("StandardDriver needs at least one data disk")
        self.sim = sim
        self.data_disks: Dict[int, DataTarget] = dict(data_disks)
        self.stats = StandardStats()

    @property
    def sector_size(self) -> int:
        return next(iter(self.data_disks.values())).geometry.sector_size

    def write(self, lba: int, data: bytes, disk_id: int = 0) -> Event:
        """Synchronous in-place write; event value is the latency in ms."""
        disk = self._disk(disk_id)
        if not data:
            raise TrailError("cannot write an empty extent")
        self.stats.logical_writes += 1
        return self.sim.process(self._write(disk, lba, data),
                                name=f"std-write@{lba}")

    def _write(self, disk: DataTarget, lba: int, data: bytes) -> Generator:
        start = self.sim.now
        yield disk.write(lba, data, priority=PRIORITY_READ)
        latency = self.sim.now - start
        self.stats.sync_writes.record(latency)
        return latency

    def read(self, lba: int, nsectors: int, disk_id: int = 0) -> Event:
        """Read directly from the data disk."""
        disk = self._disk(disk_id)
        self.stats.reads += 1
        return self.sim.process(self._read(disk, lba, nsectors),
                                name=f"std-read@{lba}")

    def _read(self, disk: DataTarget, lba: int, nsectors: int) -> Generator:
        result = yield disk.read(lba, nsectors, priority=PRIORITY_READ)
        return result.data

    def flush(self) -> Generator:
        """Nothing is buffered; completes immediately."""
        return
        yield  # pragma: no cover - makes this a generator

    def _disk(self, disk_id: int) -> DataTarget:
        disk = self.data_disks.get(disk_id)
        if disk is None:
            raise TrailError(f"unknown data disk id {disk_id}")
        return disk
