"""Baseline storage systems the paper compares Trail against."""

from repro.baselines.dcd import DcdDriver, DcdStats
from repro.baselines.group_commit import GroupCommitPolicy, SyncCommitPolicy
from repro.baselines.lfs import LfsDriver, LfsStats
from repro.baselines.standard import StandardDriver, StandardStats

__all__ = [
    "DcdDriver",
    "DcdStats",
    "GroupCommitPolicy",
    "LfsDriver",
    "LfsStats",
    "StandardDriver",
    "StandardStats",
    "SyncCommitPolicy",
]
