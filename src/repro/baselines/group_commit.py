"""Commit policies for the write-ahead log (§5.2).

The paper compares three database configurations:

* **EXT2 + Trail** — every commit forces the log synchronously, but the
  force lands on the Trail driver and costs ~transfer time.
* **EXT2** — every commit forces the log synchronously to a standard
  disk, paying seek + rotation each time.
* **EXT2 + GC** — *group commit*, simulated exactly as the paper did:
  "log records in the log buffer are forced to disk once the size of
  the log records exceeds the chosen log buffer size".  A committing
  transaction does not wait for its records to reach disk (this is the
  durability compromise the paper notes), but its *response* is only
  complete when the covering flush finishes, and while a flush is in
  progress the log latch blocks all appends — the "I/O clustering"
  effect that makes GC barely better than plain EXT2.

The first two are the same policy (:class:`SyncCommitPolicy`) on
different block devices; the third is :class:`GroupCommitPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DatabaseError


@dataclass(frozen=True)
class SyncCommitPolicy:
    """Force the log at every transaction commit (O_SYNC semantics)."""

    #: Sync commit: the transaction blocks until its records are durable.
    wait_for_durable: bool = True

    def should_flush_on_append(self, buffered_bytes: int) -> bool:
        """Appends never trigger a flush; commits do."""
        return False

    def should_flush_on_commit(self, buffered_bytes: int) -> bool:
        """Every commit forces whatever is buffered."""
        return buffered_bytes > 0


@dataclass(frozen=True)
class GroupCommitPolicy:
    """Flush only when the log buffer exceeds a fixed size (§5.2)."""

    #: The group-commit batching criterion, e.g. 50 KB in Table 2.
    log_buffer_bytes: int

    #: Group commit releases the transaction before its records are
    #: durable — the delayed-commit durability compromise.
    wait_for_durable: bool = False

    def __post_init__(self) -> None:
        if self.log_buffer_bytes < 1:
            raise DatabaseError(
                f"log buffer must be >= 1 byte, got {self.log_buffer_bytes}")

    def should_flush_on_append(self, buffered_bytes: int) -> bool:
        """Force once the buffered records exceed the buffer size."""
        return buffered_bytes >= self.log_buffer_bytes

    def should_flush_on_commit(self, buffered_bytes: int) -> bool:
        """Commits use the same size criterion — no special casing."""
        return buffered_bytes >= self.log_buffer_bytes
