"""The block-device contract shared by Trail and the baseline drivers.

The paper's point of comparison is that Trail "exposes exactly the same
interface as standard disk device drivers" — higher layers (the WAL,
the buffer pool, the synthetic workloads) are written against this
contract and run unchanged on :class:`~repro.core.driver.TrailDriver`,
:class:`~repro.baselines.standard.StandardDriver`, or
:class:`~repro.baselines.lfs.LfsDriver`.
"""

from __future__ import annotations

import abc
from typing import Dict, Protocol

from repro.disk.geometry import DiskGeometry
from repro.sim import Event, Process, ProcessGenerator, Simulation
from repro.units import Lba, Sectors


class DataTarget(Protocol):
    """Structural contract for what a driver fronts as a "data disk".

    Satisfied by a raw :class:`~repro.disk.drive.DiskDrive` and by a
    :class:`~repro.raid.array.Raid5Array` (which aggregates several
    drives behind one flat LBA space), so every driver in this
    repository can front either without knowing which it got.  The
    surface is exactly what the Trail stack touches: addressed
    read/write commands returning simulation processes, extent
    validation via :attr:`geometry`, bad-sector relocation for the
    write-back retry path, and power control for crash injection.
    """

    name: str
    geometry: DiskGeometry

    def read(self, lba: Lba, nsectors: Sectors,
             priority: int = ...) -> Process: ...

    def write(self, lba: Lba, data: bytes,
              priority: int = ...) -> Process: ...

    def relocate(self, lba: Lba, nsectors: Sectors) -> Sectors: ...

    def halt(self) -> None: ...

    def power_on(self) -> None: ...


class BlockDevice(abc.ABC):
    """Abstract synchronous-write block device.

    ``write`` returns an event that fires — with the write's
    end-to-end latency in ms as its value — once the data is *durable*
    (will survive a power failure).  ``read`` returns an event whose
    value is the requested bytes.  What durability costs is exactly
    what distinguishes the implementations.

    Write-ordering contract: writes to the *same* extent (identical
    LBA and length — a buffer-cache page) are applied in issue order.
    Writes whose extents overlap without being identical have
    *undefined relative order*, exactly like a block cache fed
    mixed-granularity I/O; file systems and databases write uniform
    aligned pages, which is what every layer in this repository does.
    """

    sim: Simulation
    data_disks: Dict[int, DataTarget]

    @abc.abstractmethod
    def write(self, lba: int, data: bytes, disk_id: int = 0) -> Event:
        """Durably write ``data`` at ``lba`` of data disk ``disk_id``."""

    @abc.abstractmethod
    def read(self, lba: int, nsectors: int, disk_id: int = 0) -> Event:
        """Read ``nsectors`` from ``lba`` of data disk ``disk_id``."""

    @abc.abstractmethod
    def flush(self) -> ProcessGenerator:
        """Generator: wait until all internal buffers are on disk."""

    @property
    @abc.abstractmethod
    def sector_size(self) -> int:
        """Sector size in bytes."""
