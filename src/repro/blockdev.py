"""The block-device contract shared by Trail and the baseline drivers.

The paper's point of comparison is that Trail "exposes exactly the same
interface as standard disk device drivers" — higher layers (the WAL,
the buffer pool, the synthetic workloads) are written against this
contract and run unchanged on :class:`~repro.core.driver.TrailDriver`,
:class:`~repro.baselines.standard.StandardDriver`, or
:class:`~repro.baselines.lfs.LfsDriver`.
"""

from __future__ import annotations

import abc
from typing import Dict

from repro.disk.drive import DiskDrive
from repro.sim import Event, ProcessGenerator, Simulation


class BlockDevice(abc.ABC):
    """Abstract synchronous-write block device.

    ``write`` returns an event that fires — with the write's
    end-to-end latency in ms as its value — once the data is *durable*
    (will survive a power failure).  ``read`` returns an event whose
    value is the requested bytes.  What durability costs is exactly
    what distinguishes the implementations.

    Write-ordering contract: writes to the *same* extent (identical
    LBA and length — a buffer-cache page) are applied in issue order.
    Writes whose extents overlap without being identical have
    *undefined relative order*, exactly like a block cache fed
    mixed-granularity I/O; file systems and databases write uniform
    aligned pages, which is what every layer in this repository does.
    """

    sim: Simulation
    data_disks: Dict[int, DiskDrive]

    @abc.abstractmethod
    def write(self, lba: int, data: bytes, disk_id: int = 0) -> Event:
        """Durably write ``data`` at ``lba`` of data disk ``disk_id``."""

    @abc.abstractmethod
    def read(self, lba: int, nsectors: int, disk_id: int = 0) -> Event:
        """Read ``nsectors`` from ``lba`` of data disk ``disk_id``."""

    @abc.abstractmethod
    def flush(self) -> ProcessGenerator:
        """Generator: wait until all internal buffers are on disk."""

    @property
    @abc.abstractmethod
    def sector_size(self) -> int:
        """Sector size in bytes."""
