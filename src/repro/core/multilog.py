"""Multiple log disks: the paper's closing optimization (§5.1).

"As a final optimization, it is possible to employ multiple log disks
to completely hide the disk re-positioning overhead from user
applications."  While one log disk's head is moving to a fresh track,
a write can land on another log disk whose head is already parked —
so clustered synchronous writes stop paying the track-switch delay
that Figure 3 shows for single-log-disk Trail.

:class:`StripedTrailDriver` composes N complete Trail instances (each
with its own log disk, predictor, allocator, staging buffer, and
write-back scheduler) over a shared set of data disks.  Requests are
routed by *page affinity* — the same (disk, LBA) extent always goes to
the same stripe — which preserves per-page write ordering end to end:
a page's log records, staging-buffer versions, and write-backs all
live in one stripe, so no stale cross-stripe write-back can clobber a
newer version, and crash recovery per stripe replays each page's
history in issue order.  Burst traffic spreads across stripes because
distinct pages hash to different stripes.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Mapping, Optional, Sequence

from repro.blockdev import BlockDevice, DataTarget
from repro.core.config import TrailConfig
from repro.core.driver import TrailDriver
from repro.core.recovery import RecoveryReport
from repro.disk.drive import DiskDrive
from repro.errors import TrailError
from repro.sim import Event, Simulation
from repro.units import Ms


class StripedTrailDriver(BlockDevice):
    """Trail with N log disks, striped by page affinity."""

    def __init__(
        self,
        sim: Simulation,
        log_drives: Sequence[DiskDrive],
        data_disks: Mapping[int, DataTarget],
        config: Optional[TrailConfig] = None,
    ) -> None:
        if not log_drives:
            raise TrailError("need at least one log disk")
        self.sim = sim
        self.data_disks: Dict[int, DataTarget] = dict(data_disks)  # trailsan: atomic_group(stripe-set)
        self.config = config or TrailConfig()
        self.stripes: List[TrailDriver] = [  # trailsan: atomic_group(stripe-set)
            TrailDriver(sim, log_drive, data_disks, self.config)
            for log_drive in log_drives
        ]

    # ------------------------------------------------------------------

    @staticmethod
    def format_disks(log_drives: Sequence[DiskDrive],
                     config: Optional[TrailConfig] = None) -> None:
        """Format every log disk as a Trail log disk."""
        for log_drive in log_drives:
            TrailDriver.format_disk(log_drive, config)

    def mount(
        self,
    ) -> Generator[Event, Any, List[Optional[RecoveryReport]]]:
        """Mount every stripe; returns the recovery reports (per
        stripe, None where no recovery was needed)."""
        reports: List[Optional[RecoveryReport]] = []
        for stripe in self.stripes:
            report = yield self.sim.process(stripe.mount())
            reports.append(report)
        return reports

    @property
    def mounted(self) -> bool:
        """True when every stripe is serving requests."""
        return all(stripe.mounted for stripe in self.stripes)

    @property
    def sector_size(self) -> int:
        return self.stripes[0].sector_size

    def _stripe_of(self, disk_id: int, lba: int) -> TrailDriver:
        return self.stripes[hash((disk_id, lba)) % len(self.stripes)]

    # ------------------------------------------------------------------
    # Block-device interface

    def write(self, lba: int, data: bytes, disk_id: int = 0) -> Event:
        # unit: (lba: data_lba)
        """Route the write to its page-affine stripe."""
        return self._stripe_of(disk_id, lba).write(lba, data,
                                                   disk_id=disk_id)

    def read(self, lba: int, nsectors: int, disk_id: int = 0) -> Event:
        # unit: (lba: data_lba, nsectors: sectors)
        """Read via the owning stripe (its staging buffer holds any
        newer-than-disk contents for this extent)."""
        return self._stripe_of(disk_id, lba).read(lba, nsectors,
                                                  disk_id=disk_id)

    def flush(self) -> Generator[Event, Any, None]:
        """Wait until every stripe is quiescent."""
        for stripe in self.stripes:
            yield from stripe.flush()

    def clean_shutdown(self) -> Generator[Event, Any, None]:
        """Flush and cleanly unmount every stripe."""
        for stripe in self.stripes:
            yield from stripe.clean_shutdown()

    def crash(self) -> None:
        """Power failure across the whole array."""
        for stripe in self.stripes:
            stripe.crash()

    # ------------------------------------------------------------------
    # Aggregate statistics

    @property
    def mean_sync_write_ms(self) -> Ms:
        total = 0.0
        count = 0
        for stripe in self.stripes:
            recorder = stripe.stats.sync_writes
            total += recorder.total
            count += recorder.count
        if count == 0:
            raise TrailError("no synchronous writes recorded")
        return total / count

    @property
    def physical_log_writes(self) -> int:
        return sum(stripe.stats.physical_log_writes
                   for stripe in self.stripes)

    @property
    def repositions(self) -> int:
        return sum(stripe.stats.repositions for stripe in self.stripes)
