"""Asynchronous write-back from host memory to the data disks (§4.1-4.3).

Pending pages are written to their data disks *from the staging buffer,
not from the log disk* — the log disk's head never leaves the active
track, which is what preserves the write-where-the-head-is invariant.
Write-backs are issued at low priority so that data-disk reads, which
some application is synchronously waiting on, overtake them in each
drive's command queue.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.buffer import BufferManager, PendingPage
from repro.disk.controller import PRIORITY_READ, PRIORITY_WRITE
from repro.disk.drive import DiskDrive
from repro.errors import DiskHaltedError, TrailError
from repro.sim import Process, Simulation, Store


class WritebackScheduler:
    """Drains the pending-page queue onto the data disks."""

    def __init__(
        self,
        sim: Simulation,
        data_disks: Dict[int, DiskDrive],
        buffers: BufferManager,
        reads_preempt_writebacks: bool = True,
    ) -> None:
        if not data_disks:
            raise TrailError("write-back scheduler needs >= 1 data disk")
        self.sim = sim
        self.data_disks = data_disks
        self.buffers = buffers
        self._write_priority = (PRIORITY_WRITE if reads_preempt_writebacks
                                else PRIORITY_READ)
        self.queue: Store = Store(sim)
        self.pages_written = 0
        self.sectors_written = 0
        self._process: Optional[Process] = None
        self._idle_event = None

    def start(self) -> Process:
        """Launch the background drain process."""
        if self._process is not None and self._process.is_alive:
            raise TrailError("write-back scheduler already running")
        self._process = self.sim.process(self._run(), name="trail-writeback")
        return self._process

    def stop(self) -> None:
        """Terminate the drain process (used by crash injection)."""
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stop")
        self._process = None

    def enqueue(self, page: PendingPage) -> None:
        """Queue ``page`` for write-back unless one is already queued."""
        if page.queued or page.in_flight:
            return
        page.queued = True
        self.queue.put(page)

    @property
    def backlog(self) -> int:
        """Pages waiting in the write-back queue."""
        return len(self.queue)

    @property
    def quiescent(self) -> bool:
        """True when nothing is queued, in flight, or pinned."""
        return len(self.queue) == 0 and self.buffers.pending_pages == 0

    # ------------------------------------------------------------------

    def _run(self):
        from repro.sim import Interrupt
        try:
            while True:
                page = yield self.queue.get()
                page.queued = False
                page.in_flight = True
                version = page.version
                data = page.data
                disk = self.data_disks.get(page.disk_id)
                if disk is None:
                    raise TrailError(
                        f"no data disk with id {page.disk_id}")
                try:
                    yield disk.write(page.lba, data,
                                     priority=self._write_priority)
                except DiskHaltedError:
                    page.in_flight = False
                    return  # power failure: recovery will replay the log
                page.in_flight = False
                self.pages_written += 1
                self.sectors_written += page.nsectors
                fully_committed = self.buffers.committed(page, version)
                if not fully_committed and not page.queued:
                    # A newer version arrived while this one was in
                    # flight; it needs its own write-back.
                    page.queued = True
                    self.queue.put(page)
        except Interrupt:
            return
