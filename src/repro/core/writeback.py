"""Asynchronous write-back from host memory to the data disks (§4.1-4.3).

Pending pages are written to their data disks *from the staging buffer,
not from the log disk* — the log disk's head never leaves the active
track, which is what preserves the write-where-the-head-is invariant.
Write-backs are issued at low priority so that data-disk reads, which
some application is synchronously waiting on, overtake them in each
drive's command queue.

Media faults on a data disk do not lose data: a failed write-back is
retried with exponential backoff, then its target sectors are
relocated to the drive's spares and retried once more; a page that
still cannot be written is parked in :attr:`failed_pages` — its data
stays pinned in the staging buffer (reads remain correct) and its log
records stay live (the log copy persists) — rather than being dropped
or wedging the drain loop.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Mapping, Optional, Tuple

from repro.blockdev import DataTarget
from repro.core.buffer import BufferManager, PageKey, PendingPage
from repro.disk.controller import PRIORITY_READ, PRIORITY_WRITE
from repro.errors import DiskHaltedError, MediaError, TrailError
from repro.sim import Event, Interrupt, Process, Simulation, Store
from repro.units import Ms


class WritebackScheduler:
    """Drains the pending-page queue onto the data disks."""

    def __init__(
        self,
        sim: Simulation,
        data_disks: Mapping[int, DataTarget],
        buffers: BufferManager,
        reads_preempt_writebacks: bool = True,
        retry_limit: int = 4,
        retry_base_ms: Ms = 1.0,
    ) -> None:
        if not data_disks:
            raise TrailError("write-back scheduler needs >= 1 data disk")
        self.sim = sim
        self.data_disks = data_disks
        self.buffers = buffers
        self._write_priority = (PRIORITY_WRITE if reads_preempt_writebacks
                                else PRIORITY_READ)
        self.retry_limit = retry_limit
        self.retry_base_ms = retry_base_ms
        self.queue: Store = Store(sim)
        self.pages_written = 0  # trailsan: atomic_group(wb-counters)
        self.sectors_written = 0  # trailsan: atomic_group(wb-counters)
        #: Write attempts that failed with a media error and were retried.
        self.write_retries = 0
        #: Pages whose targets were relocated to spare sectors.
        self.pages_relocated = 0
        #: Write-backs paused before issue because the target
        #: advertised a ``writeback_defer_ms`` hint (duck-typed; a RAID
        #: array does so only while its rebuild is actively running).
        #: The page stays pinned and the log copy stays live for the
        #: paused interval, so nothing is lost by waiting.
        self.rebuild_deferrals = 0
        #: Pages parked after retries and relocation both failed; the
        #: staging-buffer copy remains authoritative for reads.
        self.failed_pages: Dict[PageKey, PendingPage] = {}
        #: Called (with no arguments) whenever the scheduler becomes
        #: quiescent; the driver uses it to wake ``flush()`` waiters.
        self.on_idle: Optional[Callable[[], None]] = None
        self._process: Optional[Process] = None

        sanitizer = sim.sanitizer
        if sanitizer is not None:
            sanitizer.add_transition(
                "wb-counters", self._san_counter_probe,
                self._san_counter_judge)

    def _san_counter_probe(self) -> "Tuple[object, ...]":
        return self.pages_written, self.sectors_written

    def _san_counter_judge(self, old: "Tuple[object, ...]",
                           new: "Tuple[object, ...]") -> Optional[str]:
        old_pages, old_sectors = old
        new_pages, new_sectors = new
        assert isinstance(old_pages, int) and isinstance(old_sectors, int)
        assert isinstance(new_pages, int) and isinstance(new_sectors, int)
        pages_delta = new_pages - old_pages
        sectors_delta = new_sectors - old_sectors
        if pages_delta < 0 or sectors_delta < 0:
            return None  # counters were reset; resynchronize silently
        if (pages_delta == 0) != (sectors_delta == 0):
            return (f"pages_written moved by {pages_delta} but "
                    f"sectors_written by {sectors_delta} in one atomic "
                    f"segment")
        if sectors_delta < pages_delta:
            return (f"{pages_delta} page(s) accounted only "
                    f"{sectors_delta} sector(s)")
        return None

    def start(self) -> Process:
        """Launch the background drain process."""
        if self._process is not None and self._process.is_alive:
            raise TrailError("write-back scheduler already running")
        self._process = self.sim.process(self._run(), name="trail-writeback")
        return self._process

    def stop(self) -> None:
        """Terminate the drain process (used by crash injection)."""
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stop")
        self._process = None

    def enqueue(self, page: PendingPage) -> None:
        """Queue ``page`` for write-back unless one is already queued."""
        if page.queued or page.in_flight:
            return
        # A re-write of a previously failed page gets a fresh chance:
        # the new data may land on remapped (healthy) sectors.
        self.failed_pages.pop(page.key, None)
        page.queued = True
        self.queue.put(page)

    @property
    def backlog(self) -> int:
        """Pages waiting in the write-back queue."""
        return len(self.queue)

    @property
    def quiescent(self) -> bool:
        """True when nothing more can be drained: the queue is empty
        and every pinned page is either committed or parked as failed."""
        return (len(self.queue) == 0
                and self.buffers.pending_pages == len(self.failed_pages))

    # ------------------------------------------------------------------

    def _run(self) -> Generator[Event, Any, None]:
        try:
            while True:
                page = yield self.queue.get()
                page.queued = False
                page.in_flight = True
                version = page.version
                data = page.data
                disk = self.data_disks.get(page.disk_id)
                if disk is None:
                    raise TrailError(
                        f"no data disk with id {page.disk_id}")
                # Rebuild contention: a reconstructing array asks each
                # write-back to pause before issuing, so survivor
                # bandwidth leans toward the copier.  One bounded pause
                # per page — never a wait-until-rebuilt loop — because
                # write-back is also what reclaims log space; stalling
                # it outright would fill the log and stall the
                # foreground writes the log is meant to absorb.
                defer = float(getattr(disk, "writeback_defer_ms", 0.0))
                if defer > 0:
                    self.rebuild_deferrals += 1
                    yield self.sim.timeout(defer)
                try:
                    written = yield from self._write_with_retries(
                        disk, page, data)
                except DiskHaltedError:
                    page.in_flight = False
                    return  # power failure: recovery will replay the log
                page.in_flight = False
                if not written:
                    # Retries and relocation exhausted: park the page.
                    # Pinned data and live log records keep it safe.
                    self.failed_pages[page.key] = page
                    self._notify_if_idle()
                    continue
                self.pages_written += 1
                self.sectors_written += page.nsectors
                fully_committed = self.buffers.committed(page, version)
                if not fully_committed and not page.queued:
                    # A newer version arrived while this one was in
                    # flight; it needs its own write-back.
                    page.queued = True
                    self.queue.put(page)
                self._notify_if_idle()
        except Interrupt:
            return

    def _write_with_retries(self, disk: DataTarget, page: PendingPage,
                            data: bytes) -> Generator[Event, Any, bool]:
        """One write-back with bounded backoff retries and relocation.

        Returns True once the write reaches the platter, False when the
        target is unwritable even after relocating it to spares.
        ``DiskHaltedError`` propagates (power failure is not a media
        fault).
        """
        backoff = self.retry_base_ms
        for attempt in range(self.retry_limit + 1):
            try:
                yield disk.write(page.lba, data,
                                 priority=self._write_priority)
                return True
            except DiskHaltedError:
                raise
            except MediaError:
                if attempt == self.retry_limit:
                    break
                self.write_retries += 1
                if backoff > 0:
                    yield self.sim.timeout(backoff)
                backoff *= 2
        # Persistently failing target: relocate its bad sectors to
        # spares and try once more.
        if disk.relocate(page.lba, page.nsectors) > 0:
            self.pages_relocated += 1
            try:
                yield disk.write(page.lba, data,
                                 priority=self._write_priority)
                return True
            except DiskHaltedError:
                raise
            except MediaError:
                pass
        return False

    def _notify_if_idle(self) -> None:
        if self.on_idle is not None and self.quiescent:
            self.on_idle()
