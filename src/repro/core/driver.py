"""The Trail block-device driver (§4).

A :class:`TrailDriver` fronts one log disk and one or more data disks.
Synchronous writes are acknowledged as soon as they reach the log disk
— at the sector the head-position predictor says is about to pass under
the head — and are propagated to their data disks asynchronously from
the staging buffer.  Reads are served from the staging buffer when
possible and otherwise go to the data disks at high priority.

The driver exposes the same interface as a plain disk driver (``read``/
``write`` by LBA), "thus hiding all the operational details of Trail
from the file system"; the only observable difference is that
synchronous writes complete in roughly transfer time plus command
overhead instead of paying seek and rotational latency.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import (
    Any, Deque, Dict, Generator, List, Mapping, Optional, Tuple)

from repro.blockdev import BlockDevice, DataTarget
from repro.core.allocator import TrackAllocator
from repro.core.buffer import BufferManager, LiveRecord
from repro.core.config import TrailConfig
from repro.core.format import (
    LogDiskHeader, NULL_LBA, PAYLOAD_FIRST_BYTE, decode_disk_header,
    decode_geometry, encode_disk_header, encode_geometry,
    encode_record_stream)
from repro.core.prediction import HeadPositionPredictor
from repro.units import LogLba, Ms
from repro.core.recovery import RecoveryManager, RecoveryReport
from repro.core.writeback import WritebackScheduler
from repro.disk.controller import PRIORITY_READ
from repro.disk.drive import DiskDrive
from repro.disk.geometry import DiskGeometry
from repro.errors import (
    DiskHaltedError, LogDiskFullError, LogFormatError, MediaError,
    NotATrailDiskError, TrailError)
from repro.sim import (
    Event, Interrupt, LatencyRecorder, Process, Simulation, Store)


@dataclass
class TrailStats:
    """Aggregate measurements exposed by a driver instance."""

    #: End-to-end latency of every acknowledged synchronous write.
    sync_writes: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder(keep_samples=True))
    #: Payload sectors per physical log write (the realized batch size).
    batch_sizes: LatencyRecorder = field(default_factory=LatencyRecorder)
    physical_log_writes: int = 0
    logical_writes: int = 0
    repositions: int = 0
    reads_from_buffer: int = 0
    reads_from_disk: int = 0
    log_full_stalls: int = 0
    #: Unrecoverable media errors on the log disk (drive-level retries
    #: and spare remapping already exhausted).
    log_media_errors: int = 0
    #: Writes acknowledged via the degraded synchronous write-through
    #: path after the log disk was abandoned.
    degraded_writes: int = 0

    @property
    def logging_io_ms(self) -> Ms:
        """Total time callers spent blocked on synchronous log writes."""
        return self.sync_writes.total


class _PendingWrite:
    """One logical synchronous write moving through the log pipeline."""

    __slots__ = ("disk_id", "lba", "data", "nsectors", "arrival", "event",
                 "remaining", "assigned", "records")

    def __init__(self, disk_id: int, lba: int, data: bytes, nsectors: int,
                 arrival: float, event: Event) -> None:
        self.disk_id = disk_id
        self.lba = lba
        self.data = data
        self.nsectors = nsectors
        self.arrival = arrival
        self.event = event
        #: Payload sectors not yet covered by a completed log write.
        self.remaining = nsectors
        #: Payload sectors already assigned to a record being emitted
        #: (a request larger than one record spans several).
        self.assigned = 0
        #: Log records carrying pieces of this write.
        self.records: List[LiveRecord] = []


def reserved_layout(
    geometry: DiskGeometry, config: TrailConfig,
) -> Tuple[List[int], List[int]]:
    """Compute (header LBAs, usable tracks) for a log disk.

    The primary header lives at sector 0 of track 0 with the geometry
    record right after it (§3.2); replicas are spread evenly across the
    disk "to improve the robustness".  Reserved and replica tracks are
    excluded from the circular log.
    """
    reserved = set(range(config.reserved_tracks))
    header_lbas = [geometry.track_first_lba(0)]
    for index in range(1, config.header_replicas + 1):
        track = (index * geometry.num_tracks) // (config.header_replicas + 1)
        track = min(track, geometry.num_tracks - 1)
        if track not in reserved:
            reserved.add(track)
            header_lbas.append(geometry.track_first_lba(track))
    # The reserved set is tiny (the first tracks plus a handful of
    # replicas); splice the gaps between them as ranges instead of
    # testing every one of the disk's tracks for membership.
    usable: List[int] = []
    cursor = 0
    for track in sorted(reserved):
        usable.extend(range(cursor, track))
        cursor = track + 1
    usable.extend(range(cursor, geometry.num_tracks))
    if not usable:
        raise TrailError("no usable log tracks after reservation")
    return header_lbas, usable


class TrailDriver(BlockDevice):
    """Low-write-latency block device built on track-based logging."""

    def __init__(
        self,
        sim: Simulation,
        log_drive: DiskDrive,
        data_disks: Mapping[int, DataTarget],
        config: Optional[TrailConfig] = None,
    ) -> None:
        if not data_disks:
            raise TrailError("Trail needs at least one data disk")
        self.sim = sim
        self.log_drive = log_drive
        self.data_disks: Dict[int, DataTarget] = dict(data_disks)
        self.config = config or TrailConfig()
        self.stats = TrailStats()

        self.geometry: Optional[DiskGeometry] = None
        self.epoch: Optional[int] = None
        self.allocator: Optional[TrackAllocator] = None
        self.predictor: Optional[HeadPositionPredictor] = None
        self.buffers = BufferManager(self._on_record_released)
        self.writeback = WritebackScheduler(
            sim, self.data_disks, self.buffers,
            reads_preempt_writebacks=self.config.reads_preempt_writebacks,
            retry_limit=self.config.writeback_retry_limit,
            retry_base_ms=self.config.writeback_retry_base_ms)
        self.writeback.on_idle = self._on_writeback_idle
        self.last_recovery: Optional[RecoveryReport] = None

        self._header_lbas: List[int] = []
        self._usable_tracks: List[int] = []
        self._log_queue: Store = Store(sim)
        #: Requests accepted but not yet acknowledged (queued or being
        #: assembled into records); failed wholesale on a crash.
        self._unacked: Dict[int, _PendingWrite] = {}
        # The tail chain: the newest record's in-memory entry and the
        # prev_sect link the next record will carry must move together;
        # recovery reads them as one invariant.  _next_sequence stays
        # *outside* the group — it increments before the platter write
        # so a torn write can never reuse a sequence id.
        self._live_records: "OrderedDict[int, LiveRecord]" = \
            OrderedDict()  # trailsan: atomic_group(tail-chain)
        self._next_sequence = 0
        self._last_record_lba = NULL_LBA  # trailsan: atomic_group(tail-chain)
        self._physical_track: Optional[int] = None
        self._track_freed: Optional[Event] = None
        self._last_activity = 0.0
        self._writer_busy = False
        self._degraded = False
        #: Events armed by flush() waiting for the pipeline to drain.
        self._flush_waiters: List[Event] = []
        #: Events armed by the degraded-mode transition waiting for the
        #: write-back scheduler alone to go quiescent.
        self._writeback_waiters: List[Event] = []
        self._mounted = False
        self._writer_process: Optional[Process] = None
        self._repositioner_process: Optional[Process] = None

        sanitizer = sim.sanitizer
        if sanitizer is not None:
            sanitizer.add_transition("tail-chain", self._san_tail_probe,
                                     self._san_tail_judge)
            sanitizer.add_invariant("pinned-accounting",
                                    self.buffers.accounting_error)

    # ------------------------------------------------------------------
    # Formatting and mounting

    @staticmethod
    def format_disk(log_drive: DiskDrive,
                    config: Optional[TrailConfig] = None) -> None:
        """Offline format: wipe the disk, write header + geometry (§4.1)."""
        config = config or TrailConfig()
        geometry = log_drive.geometry
        header_lbas, _usable = reserved_layout(geometry, config)
        log_drive.store.clear()
        header = encode_disk_header(LogDiskHeader(epoch=0, crash_var=1),
                                    geometry.sector_size)
        geometry_sector = encode_geometry(geometry, geometry.sector_size)
        for lba in header_lbas:
            log_drive.store.write_sector(lba, header)
            log_drive.store.write_sector(lba + 1, geometry_sector)

    def mount(self) -> Generator[Event, Any, Optional[RecoveryReport]]:
        """Bring the driver online; run as a sim process.

        Reads the log-disk header, runs crash recovery if the previous
        session did not shut down cleanly, opens a new epoch, anchors
        the head-position predictor, and starts the background
        processes.  Returns the :class:`RecoveryReport` if recovery ran,
        else None.
        """
        if self._mounted:
            raise TrailError("driver is already mounted")
        geometry = self.log_drive.geometry
        self._header_lbas, self._usable_tracks = reserved_layout(
            geometry, self.config)

        result = yield self.log_drive.read(self._header_lbas[0], 2)
        try:
            header = decode_disk_header(result.data[:geometry.sector_size])
            stored_geometry = decode_geometry(
                result.data[geometry.sector_size:])
        except LogFormatError as exc:
            raise NotATrailDiskError(
                f"log disk is not Trail-formatted: {exc}") from exc
        if stored_geometry.total_sectors != geometry.total_sectors:
            raise NotATrailDiskError(
                "on-disk geometry record does not match the drive")
        self.geometry = stored_geometry

        report: Optional[RecoveryReport] = None
        if header.crash_var == 0:
            recovery = RecoveryManager(
                self.sim, self.log_drive, self.geometry,
                self._usable_tracks, epoch=header.epoch,
                data_disks=self.data_disks, config=self.config)
            report = yield from recovery.run()
            self.last_recovery = report

        self.epoch = header.epoch + 1
        yield from self._write_headers(crash_var=0)

        self.allocator = TrackAllocator(stored_geometry, self._usable_tracks)
        self.predictor = HeadPositionPredictor(
            stored_geometry,
            rotation_ms=self.log_drive.rotation.rotation_ms,
            delta_sectors=self._default_delta())
        self._next_sequence = 0
        self._last_record_lba = NULL_LBA
        self._live_records.clear()
        self._mounted = True
        self._last_activity = self.sim.now

        yield from self._anchor_reference()
        self._writer_process = self.sim.process(
            self._log_writer(), name="trail-log-writer")
        self.writeback.start()
        if self.config.idle_reposition_interval_ms > 0:
            self._repositioner_process = self.sim.process(
                self._idle_repositioner(), name="trail-repositioner")
        return report

    def _default_delta(self) -> int:
        """Initial δ estimate from the drive's fixed command overhead.

        ``HeadPositionPredictor.calibrate`` measures the real value (the
        paper's procedure); this estimate — overhead expressed in
        sector times, plus one sector for the floor() in the prediction
        formula, plus the configured slack — seeds the predictor so a
        driver is usable without a calibration pass.
        """
        geometry = self.geometry
        assert geometry is not None
        outer_spt = max(zone.sectors_per_track for zone in geometry.zones)
        sector_time = self.log_drive.rotation.rotation_ms / outer_spt
        overhead_sectors = int(self.log_drive.command_overhead_ms
                               / sector_time) + 1
        return overhead_sectors + 1 + self.config.delta_slack_sectors

    def _write_headers(self, crash_var: int) -> Generator[Event, Any, None]:
        """Persist the global header (and replicas) with ``crash_var``."""
        geometry = self.geometry
        epoch = self.epoch
        assert geometry is not None and epoch is not None
        sector = encode_disk_header(
            LogDiskHeader(epoch=epoch, crash_var=crash_var),
            geometry.sector_size)
        geometry_sector = encode_geometry(geometry, geometry.sector_size)
        for lba in self._header_lbas:
            yield self.log_drive.write(lba, sector + geometry_sector)

    # ------------------------------------------------------------------
    # Public block-device interface

    @property
    def mounted(self) -> bool:
        """True while the driver is serving requests."""
        return self._mounted

    @property
    def sector_size(self) -> int:
        """Sector size of the managed disks."""
        return self.log_drive.geometry.sector_size

    def device_health(self) -> Dict[int, Dict[str, object]]:
        """Per-data-disk health snapshot, RAID-aware when applicable.

        For a plain :class:`DiskDrive` the entry reports power and
        whole-drive-death state.  When the target is a RAID array the
        entry additionally surfaces degraded-mode serving (which member
        failed, degraded read/write counts, member I/O amplification)
        and — while a rebuild is running — its status, progress, and
        any sectors lost to unreadable survivor extents.  Everything is
        probed structurally so the driver stays ignorant of the
        concrete target type.
        """
        health: Dict[int, Dict[str, object]] = {}
        for disk_id in sorted(self.data_disks):
            disk = self.data_disks[disk_id]
            entry: Dict[str, object] = {
                "name": disk.name,
                "halted": bool(getattr(disk, "halted", False)),
                "dead": bool(getattr(disk, "dead", False)),
            }
            stats = getattr(disk, "stats", None)
            degraded_reads = getattr(stats, "degraded_reads", None)
            if degraded_reads is not None:  # RAID-fronted target
                entry["degraded"] = (
                    getattr(disk, "failed_drive", None) is not None)
                entry["array_failed"] = bool(
                    getattr(disk, "array_failed", False))
                entry["degraded_reads"] = degraded_reads
                entry["degraded_writes"] = getattr(
                    stats, "degraded_writes", 0)
                entry["member_ios"] = getattr(stats, "member_ios", 0)
                entry["amplification"] = getattr(
                    stats, "amplification", 0.0)
                engine = getattr(disk, "rebuild", None)
                if engine is not None:
                    entry["rebuild_status"] = engine.status
                    entry["rebuild_progress"] = engine.progress
                    entry["rebuild_stripes"] = engine.stripes_rebuilt
                    entry["rebuild_lost_sectors"] = len(engine.lost_sectors)
            health[disk_id] = entry
        return health

    def write(self, lba: int, data: bytes, disk_id: int = 0) -> Event:
        # unit: (lba: data_lba)
        """Synchronous write: the event fires once the data is durable.

        The event's value is the write's end-to-end latency in ms.
        """
        self._check_mounted()
        disk = self._data_disk(disk_id)
        if not data:
            raise TrailError("cannot write an empty extent")
        sector_size = self.sector_size
        nsectors = (len(data) + sector_size - 1) // sector_size
        disk.geometry.check_extent(lba, nsectors)
        pad = nsectors * sector_size - len(data)
        padded = data + bytes(pad) if pad else data
        event = self.sim.event()
        request = _PendingWrite(disk_id, lba, padded, nsectors,
                                self.sim.now, event)
        self.stats.logical_writes += 1
        self._unacked[id(request)] = request
        self._log_queue.put(request)
        return event

    def read(self, lba: int, nsectors: int, disk_id: int = 0) -> Event:
        # unit: (lba: data_lba, nsectors: sectors)
        """Read: served from the staging buffer or the data disk (§4.3).

        The event's value is the data bytes.
        """
        self._check_mounted()
        disk = self._data_disk(disk_id)
        disk.geometry.check_extent(lba, nsectors)
        cached = self.buffers.get_cached(disk_id, lba, nsectors)
        if cached is not None:
            self.stats.reads_from_buffer += 1
            event = self.sim.event()
            event.succeed(cached)
            return event
        self.stats.reads_from_disk += 1
        return self.sim.process(
            self._read_through(disk, disk_id, lba, nsectors),
            name=f"trail-read@{lba}")

    def _read_through(self, disk: DataTarget, disk_id: int,
                      lba: int, nsectors: int) -> Generator[Event, Any, bytes]:
        result = yield disk.read(lba, nsectors, priority=PRIORITY_READ)
        data = bytearray(result.data)
        sector_size = self.sector_size
        # Overlay any pinned pages that overlap: the buffer holds newer
        # contents than the data disk until write-back commits.
        for page in self.buffers.find_covering(disk_id, lba, nsectors):
            overlap_start = max(lba, page.lba)
            overlap_end = min(lba + nsectors, page.lba + page.nsectors)
            for sector in range(overlap_start, overlap_end):
                src = (sector - page.lba) * sector_size
                dst = (sector - lba) * sector_size
                data[dst:dst + sector_size] = page.data[src:src + sector_size]
        return bytes(data)

    @property
    def degraded(self) -> bool:
        """True once the log disk has been abandoned and every write
        goes synchronously to its data disk (write-through mode)."""
        return self._degraded

    def flush(self) -> Generator[Event, Any, None]:
        """Wait until every acknowledged write reached its data disk.

        Event-driven: each waiter parks on an event that the log writer
        and the write-back scheduler fire when they go idle, instead of
        polling the pipeline state on a timer.
        """
        self._check_mounted()
        while not self._is_quiet():
            event = self.sim.event()
            self._flush_waiters.append(event)
            yield event

    def _is_quiet(self) -> bool:
        """Nothing queued, being written, or awaiting write-back."""
        return (len(self._log_queue) == 0 and not self._writer_busy
                and self.writeback.quiescent)

    def _notify_idle(self) -> None:
        """Wake flush() waiters if the whole pipeline has drained."""
        if not self._flush_waiters or not self._is_quiet():
            return
        waiters, self._flush_waiters = self._flush_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()

    def _on_writeback_idle(self) -> None:
        """The write-back scheduler went quiescent."""
        if self._writeback_waiters:
            waiters, self._writeback_waiters = self._writeback_waiters, []
            for event in waiters:
                if not event.triggered:
                    event.succeed()
        self._notify_idle()

    def clean_shutdown(self) -> Generator[Event, Any, None]:
        """Flush everything and mark the log disk clean (§3.3).

        The clean marker is withheld when the log disk is degraded (it
        may be unwritable, and is already marked clean if the
        transition managed it) or when parked write-back failures mean
        the log still holds the only copy of some sectors — leaving
        ``crash_var == 0`` forces the next mount through recovery,
        which replays or reports them instead of silently discarding.
        """
        yield from self.flush()
        self._stop_background()
        if not self._degraded and not self.writeback.failed_pages:
            try:
                yield from self._write_headers(crash_var=1)
            except MediaError:
                self.stats.log_media_errors += 1
        self._mounted = False

    def crash(self) -> None:
        """Inject a power failure: processes die, host memory is lost.

        The sector stores keep whatever physically reached the platters;
        a subsequent :meth:`mount` (on a fresh driver over the same
        drives) will find ``crash_var == 0`` and run recovery.
        """
        self._stop_background()
        self._mounted = False
        self._log_queue.drain()
        for request in list(self._unacked.values()):
            if not request.event.triggered:
                request.event.fail(DiskHaltedError("power failure"))
                request.event.defuse()
        self._unacked.clear()
        self.buffers.drop_all()
        for event in self._flush_waiters + self._writeback_waiters:
            if not event.triggered:
                event.succeed()
        self._flush_waiters.clear()
        self._writeback_waiters.clear()
        self.log_drive.halt()
        for disk in self.data_disks.values():
            disk.halt()

    def _stop_background(self) -> None:
        for process in (self._writer_process, self._repositioner_process):
            if process is not None and process.is_alive:
                process.interrupt("shutdown")
        self._writer_process = None
        self._repositioner_process = None
        self.writeback.stop()

    # ------------------------------------------------------------------
    # Log-writer process (§4.2)

    def _log_writer(self) -> Generator[Event, Any, None]:
        try:
            while True:
                first = yield self._log_queue.get()
                self._writer_busy = True
                pending: Deque[_PendingWrite] = deque([first])
                if self.config.batching_enabled:
                    pending.extend(self._log_queue.drain())
                while pending:
                    if self._degraded:
                        yield from self._write_through(list(pending))
                        pending.clear()
                    else:
                        yield from self._write_record(pending)
                    if self.config.batching_enabled:
                        pending.extend(self._log_queue.drain())
                self._writer_busy = False
                self._last_activity = self.sim.now
                self._notify_idle()
        except Interrupt:
            self._writer_busy = False
            return
        except DiskHaltedError:
            self._writer_busy = False
            return

    def _write_record(
        self, pending: Deque[_PendingWrite],
    ) -> Generator[Event, Any, None]:
        """Assemble one write record from ``pending`` and put it on disk."""
        allocator = self.allocator
        predictor = self.predictor
        assert allocator is not None and predictor is not None
        # Ensure the current track can hold a header plus >= 1 payload
        # sector; otherwise move on (writes pay the switch themselves).
        while (allocator.largest_free_run() < 2
               or allocator.utilization() >= 1.0):
            yield from self._advance_track()

        capacity = min(self.config.max_batch_sectors,
                       allocator.largest_free_run() - 1)
        spans: List[Tuple[_PendingWrite, int, int]] = []
        total = 0
        while pending and total < capacity:
            request = pending[0]
            take = min(request.nsectors - request.assigned, capacity - total)
            spans.append((request, request.assigned, take))
            request.assigned += take
            total += take
            if request.assigned == request.nsectors:
                pending.popleft()

        track = allocator.current_track
        predicted = predictor.predict_sector(
            self.sim.now + self._pending_move_ms(track), track)
        start_sector = allocator.place(predicted, 1 + total)
        if start_sector is None:
            yield from self._advance_track()
            yield from self._write_record_spans(spans, pending)
            return
        header_lba = allocator.commit_placement(start_sector, 1 + total)
        yield from self._emit_record(header_lba, track, spans, total, pending)
        if not self._degraded:
            yield from self._after_record(pending)

    def _write_record_spans(
        self,
        spans: List[Tuple[_PendingWrite, int, int]],
        pending: Deque[_PendingWrite],
    ) -> Generator[Event, Any, None]:
        """Place already-chosen spans on the (fresh) current track."""
        allocator = self.allocator
        predictor = self.predictor
        geometry = self.geometry
        assert (allocator is not None and predictor is not None
                and geometry is not None)
        total = sum(count for _request, _offset, count in spans)
        track = allocator.current_track
        predicted = predictor.predict_sector(
            self.sim.now + self._pending_move_ms(track), track)
        start_sector = allocator.place(predicted, 1 + total)
        if start_sector is None:
            raise TrailError(
                f"record of {1 + total} sectors does not fit an empty "
                f"track of {geometry.track_sectors(track)}")
        header_lba = allocator.commit_placement(start_sector, 1 + total)
        yield from self._emit_record(header_lba, track, spans, total, pending)
        if not self._degraded:
            yield from self._after_record(pending)

    def _after_record(
        self, pending: Deque[_PendingWrite],
    ) -> Generator[Event, Any, None]:
        """Post-record track maintenance (§4.2's interrupt handler).

        Past the utilization threshold the tail advances to the next
        track; the explicit repositioning *read* is issued only when no
        request is waiting — a queued request's own write moves the
        head, so the read would be pure added latency.
        """
        allocator = self.allocator
        assert allocator is not None
        if (allocator.utilization()
                < self.config.track_utilization_threshold):
            return
        yield from self._advance_track()
        if not pending and len(self._log_queue) == 0:
            yield from self._reposition_read()

    def _emit_record(
        self,
        header_lba: int,
        track: int,
        spans: List[Tuple[_PendingWrite, int, int]],
        total: int,
        pending: Deque[_PendingWrite],
    ) -> Generator[Event, Any, None]:
        predictor = self.predictor
        epoch = self.epoch
        assert predictor is not None and epoch is not None
        sector_size = self.sector_size
        sequence = self._next_sequence
        self._next_sequence += 1

        record = LiveRecord(sequence_id=sequence, track=track,
                            header_lba=LogLba(header_lba), nsectors=total)
        if self._live_records:
            log_head = next(iter(self._live_records.values())).header_lba
        else:
            log_head = header_lba

        # Flattened (first_data_byte, log_lba, data_lba, major, minor)
        # tuples plus one contiguous masked-payload buffer, straight
        # into encode_record_stream: each span is copied with a single
        # slice assignment and the displaced first bytes are read and
        # masked by integer indexing, instead of slicing (and later
        # re-joining) one bytes object per payload sector.
        entries: List[Tuple[int, int, int, int, int]] = []
        append_entry = entries.append
        body = bytearray(total * sector_size)
        index = 0
        pos = 0
        for request, offset, count in spans:
            data = request.data
            base_lba = request.lba + offset
            disk_id = request.disk_id
            nbytes = count * sector_size
            start = offset * sector_size
            body[pos:pos + nbytes] = data[start:start + nbytes]
            payload_base = header_lba + 1 + index
            for sector in range(count):
                at = pos + sector * sector_size
                append_entry((body[at], payload_base + sector,
                              base_lba + sector, disk_id, 0))
                body[at] = PAYLOAD_FIRST_BYTE
            index += count
            pos += nbytes

        blob = encode_record_stream(
            epoch, sequence, self._last_record_lba, log_head,
            entries, body, sector_size)

        try:
            result = yield self.log_drive.write(header_lba, blob)
        except MediaError as exc:
            self.stats.log_media_errors += 1
            yield from self._log_write_failed(exc, spans, pending)
            return

        # The record enters the live tail only once it is on the
        # platter, in the same atomic segment that stitches the chain
        # link — no peer may observe one without the other.
        self._live_records[sequence] = record
        self._last_record_lba = header_lba
        self._physical_track = track
        predictor.set_reference(self.sim.now, header_lba + total)
        predictor.realized_rotation.record(result.rotation_ms)
        self.stats.physical_log_writes += 1
        self.stats.batch_sizes.record(total)
        self._last_activity = self.sim.now

        for request, _offset, count in spans:
            request.remaining -= count
            request.records.append(record)
            if request.remaining == 0:
                page, version = self.buffers.pin(
                    request.disk_id, request.lba, request.data, sector_size)
                for owner in request.records:
                    self.buffers.attach(owner, page, version)
                self.writeback.enqueue(page)
                latency = self.sim.now - request.arrival
                self.stats.sync_writes.record(latency)
                self._unacked.pop(id(request), None)
                request.event.succeed(latency)

    # ------------------------------------------------------------------
    # Degraded mode (log-disk failure)

    def _log_write_failed(
        self,
        exc: MediaError,
        spans: List[Tuple[_PendingWrite, int, int]],
        pending: Deque[_PendingWrite],
    ) -> Generator[Event, Any, None]:
        """A log write exhausted the drive's retries and spares.

        With degraded mode enabled the driver abandons the log disk and
        "degenerates to a standard disk": it drains the write-back
        backlog, marks the log clean so stale records are never
        replayed over newer write-through data, and services the failed
        record's requests (and everything after them) synchronously.
        With it disabled the affected requests fail with the media
        error and logging continues on the remaining tracks.
        """
        requests: List[_PendingWrite] = []
        for request, _offset, _count in spans:
            if request not in requests:
                requests.append(request)
        for request in requests:
            if request in pending:
                pending.remove(request)

        if not self.config.degraded_mode_enabled:
            for request in requests:
                self._unacked.pop(id(request), None)
                if not request.event.triggered:
                    request.event.fail(exc)
                    request.event.defuse()
            return

        yield from self._enter_degraded()
        yield from self._write_through(requests)

    def _enter_degraded(self) -> Generator[Event, Any, None]:
        """Flip to synchronous write-through mode.

        Order matters for crash safety: first let the write-back
        scheduler finish committing every page logged *before* the
        failure (their records match the data disks, so replay would be
        idempotent), only then mark the log clean, and only after that
        may write-through acknowledgements proceed — otherwise a crash
        could replay pre-failure records over newer write-through data.
        """
        self._degraded = True
        while not self.writeback.quiescent:
            event = self.sim.event()
            self._writeback_waiters.append(event)
            yield event
        if not self.writeback.failed_pages:
            # Parked write-back failures keep their only durable copy
            # on the log disk; in that double-failure case the log must
            # stay dirty so the next mount reports them.
            try:
                yield from self._write_headers(crash_var=1)
            except MediaError:
                self.stats.log_media_errors += 1

    def _write_through(
        self, requests: List[_PendingWrite],
    ) -> Generator[Event, Any, None]:
        """Service requests synchronously against their data disks."""
        for request in requests:
            disk = self._data_disk(request.disk_id)
            try:
                yield disk.write(request.lba, request.data)
            except MediaError as failure:
                self._unacked.pop(id(request), None)
                if not request.event.triggered:
                    request.event.fail(failure)
                    request.event.defuse()
                continue
            self.stats.degraded_writes += 1
            latency = self.sim.now - request.arrival
            self.stats.sync_writes.record(latency)
            self._unacked.pop(id(request), None)
            if not request.event.triggered:
                request.event.succeed(latency)

    # ------------------------------------------------------------------
    # Track movement

    def _pending_move_ms(self, target_track: int) -> float:
        """Estimated head-move time the next command will pay."""
        physical = self._physical_track
        if physical is None or physical == target_track:
            return 0.0
        geometry = self.geometry
        assert geometry is not None
        from_cyl, from_head = geometry.track_location(physical)
        to_cyl, to_head = geometry.track_location(target_track)
        return self.log_drive.seek.reposition_time(
            from_cyl, from_head, to_cyl, to_head)

    def _advance_track(self) -> Generator[Event, Any, None]:
        """Move the tail to the next free track, waiting if the log is full."""
        allocator = self.allocator
        assert allocator is not None
        while True:
            try:
                allocator.advance()
                return
            except LogDiskFullError:
                self.stats.log_full_stalls += 1
                self._track_freed = self.sim.event()
                yield self._track_freed

    def _reposition_read(self) -> Generator[Event, Any, None]:
        """Park the head on the new track with an explicit read (§4.2).

        A media error here is swallowed: repositioning is purely a
        latency optimization, so a bad anchor sector only costs
        prediction accuracy, never correctness.
        """
        allocator = self.allocator
        predictor = self.predictor
        geometry = self.geometry
        assert (allocator is not None and predictor is not None
                and geometry is not None)
        track = allocator.current_track
        target_sector = predictor.predict_sector(
            self.sim.now + self._pending_move_ms(track), track)
        target_lba = geometry.track_first_lba(track) + target_sector
        try:
            yield self.log_drive.read(target_lba, 1)
        except MediaError:
            return
        self._physical_track = track
        predictor.set_reference(self.sim.now, target_lba)
        self.stats.repositions += 1
        self._last_activity = self.sim.now

    def _anchor_reference(self) -> Generator[Event, Any, None]:
        """Initial anchor: read one sector of the current track."""
        allocator = self.allocator
        predictor = self.predictor
        geometry = self.geometry
        assert (allocator is not None and predictor is not None
                and geometry is not None)
        track = allocator.current_track
        anchor_lba = geometry.track_first_lba(track)
        try:
            yield self.log_drive.read(anchor_lba, 1)
        except MediaError:
            # Unreadable anchor: seed the reference without the read;
            # the first real write re-anchors it precisely.
            pass
        self._physical_track = track
        predictor.set_reference(self.sim.now, anchor_lba)

    def _idle_repositioner(self) -> Generator[Event, Any, None]:
        """Periodically re-anchor the prediction reference (§3.1).

        Rotation-speed drift makes predictions stale during long idle
        stretches; a cheap read on the current track refreshes the
        reference point.  Only runs when the log disk is idle, so the
        cost is invisible to foreground writes.
        """
        interval = self.config.idle_reposition_interval_ms
        allocator = self.allocator
        predictor = self.predictor
        geometry = self.geometry
        assert (allocator is not None and predictor is not None
                and geometry is not None)
        try:
            while True:
                yield self.sim.timeout(interval)
                if not self._mounted:
                    return
                if (self._writer_busy or len(self._log_queue) > 0
                        or self.sim.now - self._last_activity < interval):
                    continue
                track = allocator.current_track
                target_sector = predictor.predict_sector(
                    self.sim.now + self._pending_move_ms(track), track)
                target_lba = (geometry.track_first_lba(track)
                              + target_sector)
                try:
                    yield self.log_drive.read(target_lba, 1)
                except MediaError:
                    continue
                self._physical_track = track
                predictor.set_reference(self.sim.now, target_lba)
                self.stats.repositions += 1
                self._last_activity = self.sim.now
        except (Interrupt, DiskHaltedError):
            return

    # ------------------------------------------------------------------
    # Record lifecycle

    def _on_record_released(self, record: LiveRecord) -> None:
        """A record's pages all committed: free its log-disk space."""
        allocator = self.allocator
        assert allocator is not None
        allocator.record_released(record.track)
        self._live_records.pop(record.sequence_id, None)
        if self._track_freed is not None and not self._track_freed.triggered:
            self._track_freed.succeed()
            self._track_freed = None

    # ------------------------------------------------------------------
    # TRAILSAN runtime checks (atomic_group(tail-chain))

    def _san_tail_probe(self) -> Tuple[object, ...]:
        if self._live_records:
            newest: Optional[int] = next(reversed(self._live_records))
        else:
            newest = None
        return newest, self._last_record_lba

    def _san_tail_judge(self, old: Tuple[object, ...],
                        new: Tuple[object, ...]) -> Optional[str]:
        old_key, old_lba = old
        new_key, new_lba = new
        if isinstance(new_key, int) and new_key >= self._next_sequence:
            return (f"live record {new_key} at or above the next "
                    f"sequence id {self._next_sequence}")
        grew = (isinstance(new_key, int)
                and (old_key is None
                     or (isinstance(old_key, int) and new_key > old_key)))
        if grew and new_lba == old_lba:
            return (f"record {new_key!r} entered the live tail while "
                    f"the chain link stayed at lba {new_lba!r} — the "
                    f"pair must move in one atomic segment")
        return None

    # ------------------------------------------------------------------

    def _data_disk(self, disk_id: int) -> DataTarget:
        disk = self.data_disks.get(disk_id)
        if disk is None:
            raise TrailError(f"unknown data disk id {disk_id}")
        return disk

    def _check_mounted(self) -> None:
        if not self._mounted:
            raise TrailError("driver is not mounted")
