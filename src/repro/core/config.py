"""Tunable parameters of the Trail driver.

Defaults follow the paper: 30 % track-utilization threshold before the
head moves to the next track (§4.2), batching bounded by the record
header's array capacity (§3.2), and periodic idle repositioning to keep
the prediction reference fresh (§3.1).  The ablation flags let
benchmarks turn individual mechanisms off to measure their
contribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Maximum sectors described by one write record (MAX_TRAIL_BATCH).
#: 40 entries x 11 bytes plus the fixed header fields fit one 512-byte
#: header sector; the paper's Table 1 batches up to 32.
MAX_TRAIL_BATCH = 40

#: On-disk signature identifying a Trail log disk (MAX_SIG_LEN = 8).
TRAIL_SIGNATURE = b"TRAILLOG"


@dataclass
class TrailConfig:
    """Configuration for a :class:`~repro.core.driver.TrailDriver`."""

    #: Move to the next track once the current track is this full (§4.2).
    track_utilization_threshold: float = 0.30

    #: Upper bound on sectors batched into one write record.
    max_batch_sectors: int = MAX_TRAIL_BATCH

    #: Coalesce queued requests into one physical log write (§4.2).
    #: Disabling reproduces Table 1's batch-size-1 behaviour.
    batching_enabled: bool = True

    #: Extra prediction margin in sectors on top of the calibrated δ.
    #: δ itself is measured by ``HeadPositionPredictor.calibrate``.
    delta_slack_sectors: int = 1

    #: Re-anchor the prediction reference after this much log-disk idle
    #: time (§3.1's periodic repositioning).  ``0`` disables the
    #: repositioner.
    idle_reposition_interval_ms: float = 250.0

    #: Tracks reserved at the front of the disk for the global header,
    #: its replicas, and the geometry record (§3.2: "stored at the first
    #: track ... also replicated at several other places").
    reserved_tracks: int = 2

    #: Number of additional header replicas spread across the disk.
    header_replicas: int = 2

    #: Record the ``log_head`` recovery bound in each record (§3.3's
    #: second optimization).  Disabling forces recovery to trace the
    #: prev_sect chain as far as it goes.
    log_head_bound_enabled: bool = True

    #: Locate the youngest record by binary search over tracks (§3.3's
    #: first optimization); disabling falls back to a sequential scan.
    binary_search_recovery: bool = True

    #: Write pending records back to the data disks during recovery
    #: (Fig. 4(b): recovery is >3.5x faster when this is skipped).
    recovery_writeback: bool = True

    #: Host staging-buffer budget in bytes (0 = unlimited).  The paper
    #: uses "part of the host memory"; the driver applies backpressure
    #: to incoming writes when the pinned set would exceed this.
    buffer_budget_bytes: int = 0

    #: Queue priority separation: data-disk reads ahead of write-backs.
    reads_preempt_writebacks: bool = True

    #: Bounded retry attempts the write-back scheduler makes when a
    #: data-disk write fails with a media error, with exponential
    #: backoff between attempts.
    writeback_retry_limit: int = 4

    #: Backoff before the first write-back retry; doubles per attempt.
    writeback_retry_base_ms: float = 1.0

    #: Degrade gracefully when the log disk dies: flip to synchronous
    #: write-through to the data disks (the paper notes Trail
    #: "degenerates to a standard disk") instead of failing every
    #: subsequent write.  Disabling makes a log-disk media failure
    #: propagate to the caller, for ablation.
    degraded_mode_enabled: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.track_utilization_threshold <= 1.0:
            raise ValueError(
                "track_utilization_threshold must be in (0, 1], got "
                f"{self.track_utilization_threshold}")
        if not 1 <= self.max_batch_sectors <= MAX_TRAIL_BATCH:
            raise ValueError(
                f"max_batch_sectors must be in [1, {MAX_TRAIL_BATCH}], got "
                f"{self.max_batch_sectors}")
        if self.reserved_tracks < 1:
            raise ValueError(
                f"reserved_tracks must be >= 1, got {self.reserved_tracks}")
        if self.idle_reposition_interval_ms < 0:
            raise ValueError("idle_reposition_interval_ms must be >= 0")
        if self.header_replicas < 0:
            raise ValueError("header_replicas must be >= 0")
        if self.delta_slack_sectors < 0:
            raise ValueError("delta_slack_sectors must be >= 0")
        if self.writeback_retry_limit < 0:
            raise ValueError("writeback_retry_limit must be >= 0")
        if self.writeback_retry_base_ms < 0:
            raise ValueError("writeback_retry_base_ms must be >= 0")
