"""On-disk structures of the Trail log: the self-describing format (§3.2).

Two structures live on the log disk:

* the global ``log_disk_header`` (signature, epoch, crash flag) stored
  on the first track and replicated elsewhere, followed by a geometry
  record so recovery code can interpret track boundaries; and
* one ``write record`` per physical log write: a one-sector record
  header followed by the payload sectors.

The format is *self-describing without bit stuffing*: every record
header sector begins with ``0xFF`` and every payload sector with
``0x00``; each payload sector's original first byte is displaced into
the header's ``first_data_byte[]`` array and restored on recovery.
Together with the signature, epoch, and monotonically increasing
sequence id, a scan can unambiguously identify record boundaries on a
raw track.

All integers are little-endian.  One header sector holds the fixed
fields plus up to :data:`~repro.core.config.MAX_TRAIL_BATCH` batch
entries of 11 bytes each.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.config import MAX_TRAIL_BATCH, TRAIL_SIGNATURE
from repro.disk.geometry import DiskGeometry, Zone
from repro.errors import LogFormatError
from repro.units import SECTOR_SIZE, DataLba, LogLba

#: Marker byte opening every record-header sector.
HEADER_FIRST_BYTE = 0xFF
#: Marker byte forced onto every payload sector.
PAYLOAD_FIRST_BYTE = 0x00

#: Sentinel LBA meaning "no such sector" (prev_sect of the first record).
NULL_LBA = 0xFFFFFFFF

_SIG_LEN = len(TRAIL_SIGNATURE)

# first_byte, signature, epoch, sequence_id, prev_sect, log_head,
# payload_crc, header_crc, batch_size.  Two CRCs extend the paper's
# format (which assumes the only failure is power loss):
#
# * ``payload_crc`` covers the *masked* payload sectors exactly as they
#   lie on the platter: a crash can tear a record (header sector
#   persisted, payload sectors not — only ever the youngest record,
#   because log writes are strictly sequential), and recovery must
#   detect and discard such a record rather than replay garbage.
# * ``header_crc`` covers the header sector itself (with this field
#   zeroed), so a silent bit flip anywhere in the header — a batch
#   entry's target LBA, the back pointer, the displaced first byte —
#   turns the sector into a non-record instead of redirecting replay
#   to the wrong address.
_FIXED_FMT = f"<B{_SIG_LEN}sIIIIIIH"
_FIXED_SIZE = struct.calcsize(_FIXED_FMT)
#: Byte offset of ``header_crc`` within the header sector (the fields
#: before it: first_byte, signature, and five 4-byte integers).
_HEADER_CRC_OFFSET = struct.calcsize(f"<B{_SIG_LEN}sIIIII")

# first_data_byte, log_lba, data_lba, data_major, data_minor
_ENTRY_FMT = "<BIIBB"
_ENTRY_SIZE = struct.calcsize(_ENTRY_FMT)

#: Precompiled structs and the one-byte payload marker, hoisted off the
#: per-record encode path.
_FIXED_STRUCT = struct.Struct(_FIXED_FMT)
_ENTRY_STRUCT = struct.Struct(_ENTRY_FMT)
_CRC_STRUCT = struct.Struct("<I")
_PAYLOAD_PREFIX = bytes([PAYLOAD_FIRST_BYTE])

assert _FIXED_SIZE + MAX_TRAIL_BATCH * _ENTRY_SIZE <= SECTOR_SIZE, (
    "record header must fit one sector")

# signature, magic, epoch, crash_var, crc32 of the preceding fields
_DISK_HEADER_FMT = f"<{_SIG_LEN}sIIiI"
_DISK_HEADER_BODY_FMT = f"<{_SIG_LEN}sIIi"
_DISK_HEADER_MAGIC = 0x7452_0001  # 'tR' + format version 1

# heads, sector_size, zone_count then per zone: cylinder_count, spt
_GEOMETRY_FIXED_FMT = "<HHH"
_GEOMETRY_ZONE_FMT = "<II"


@dataclass(frozen=True)
class BatchEntry:
    """One logged sector inside a write record."""

    #: Target LBA on the data disk this sector ultimately belongs to.
    data_lba: DataLba
    #: LBA on the log disk where the payload sector was written.
    log_lba: LogLba
    #: The payload's original first byte, displaced by the 0x00 marker.
    first_data_byte: int
    #: Major/minor device number of the target data disk.
    data_major: int = 0
    data_minor: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.first_data_byte <= 0xFF:
            raise LogFormatError(
                f"first_data_byte out of range: {self.first_data_byte}")


@dataclass(frozen=True)
class RecordHeader:
    """Decoded contents of a record-header sector."""

    epoch: int
    sequence_id: int
    #: Log-disk LBA of the previous record's header (NULL_LBA if none).
    prev_sect: LogLba
    #: Log-disk LBA of the oldest uncommitted record's header at the
    #: time this record was written — the recovery scan bound (§3.3).
    log_head: LogLba
    entries: Tuple[BatchEntry, ...]
    #: CRC-32 of the masked payload sectors as written (torn-record
    #: detection; filled in by :func:`encode_record`).
    payload_crc: int = 0
    #: CRC-32 of the header sector with this field zeroed (silent
    #: header-corruption detection; filled in by :func:`encode_record`).
    header_crc: int = 0

    @property
    def batch_size(self) -> int:
        """Number of logged sectors in this record."""
        return len(self.entries)


@dataclass(frozen=True)
class LogDiskHeader:
    """Decoded contents of the global log-disk header sector."""

    epoch: int
    #: 0 while mounted (dirty); 1 after a clean shutdown (§3.3).
    crash_var: int


def encode_record_raw(
    epoch: int,
    sequence_id: int,
    prev_sect: int,
    log_head: int,
    entries: Sequence[Tuple[int, int, int, int, int]],
    payload_sectors: Sequence[bytes],
    sector_size: int = SECTOR_SIZE,
) -> List[bytes]:
    """Serialize a write record from already-flattened entry fields.

    ``entries[i]`` is ``(first_data_byte, log_lba, data_lba,
    data_major, data_minor)`` — the on-disk field order of
    :data:`_ENTRY_FMT`.  This is the packing core of
    :func:`encode_record`; the log driver calls it directly so the hot
    write path never materializes :class:`BatchEntry` /
    :class:`RecordHeader` objects that would be discarded right after
    packing.
    """
    if len(payload_sectors) != len(entries):
        raise LogFormatError(
            f"{len(entries)} entries but {len(payload_sectors)} "
            "payload sectors")
    if len(entries) > MAX_TRAIL_BATCH:
        raise LogFormatError(
            f"batch of {len(entries)} exceeds MAX_TRAIL_BATCH="
            f"{MAX_TRAIL_BATCH}")

    crc32 = zlib.crc32
    crc = 0
    masked: List[bytes] = []
    append = masked.append
    for entry, payload in zip(entries, payload_sectors):
        if len(payload) != sector_size:
            raise LogFormatError(
                f"payload sector must be {sector_size} bytes, got "
                f"{len(payload)}")
        if payload[0] != entry[0]:
            raise LogFormatError(
                "entry.first_data_byte does not match the payload's "
                f"first byte ({entry[0]} != {payload[0]})")
        sector = _PAYLOAD_PREFIX + payload[1:]
        append(sector)
        crc = crc32(sector, crc)

    # One zero-filled header sector, filled in place: the trailing
    # padding comes free with the allocation, and the precompiled
    # Struct objects skip the per-call format parse.
    packed = bytearray(sector_size)
    _FIXED_STRUCT.pack_into(
        packed, 0, HEADER_FIRST_BYTE, TRAIL_SIGNATURE, epoch,
        sequence_id, prev_sect, log_head, crc, 0, len(entries))
    offset = _FIXED_SIZE
    entry_pack = _ENTRY_STRUCT.pack_into
    for entry in entries:
        entry_pack(packed, offset, *entry)
        offset += _ENTRY_SIZE
    _CRC_STRUCT.pack_into(packed, _HEADER_CRC_OFFSET, crc32(packed))
    return [bytes(packed)] + masked


# trailhot: hot_callee -- the one-copy encoder behind every log write
def encode_record_stream(
    epoch: int,
    sequence_id: int,
    prev_sect: int,
    log_head: int,
    entries: Sequence[Tuple[int, int, int, int, int]],
    masked_payload: "bytearray",
    sector_size: int = SECTOR_SIZE,
) -> bytes:
    """Serialize a write record whose payload is already masked.

    ``masked_payload`` holds the batch's payload sectors contiguously
    with the 0x00 marker already in each sector's first byte (the
    displaced originals live in ``entries[i][0]``).  Returns the whole
    record — header sector plus payload — as one ``bytes`` blob,
    byte-identical to ``b"".join(encode_record_raw(...))`` but without
    the per-sector slice, concatenation, and CRC calls (CRC-32 chained
    per sector equals CRC-32 of the concatenation).  The log driver's
    emit path builds ``masked_payload`` with bulk slice assignments
    and calls this directly.
    """
    if len(masked_payload) != len(entries) * sector_size:
        raise LogFormatError(
            f"{len(entries)} entries but {len(masked_payload)} payload "
            "bytes")
    if len(entries) > MAX_TRAIL_BATCH:
        raise LogFormatError(
            f"batch of {len(entries)} exceeds MAX_TRAIL_BATCH="
            f"{MAX_TRAIL_BATCH}")
    crc32 = zlib.crc32
    crc = crc32(masked_payload)
    packed = bytearray(sector_size)
    _FIXED_STRUCT.pack_into(
        packed, 0, HEADER_FIRST_BYTE, TRAIL_SIGNATURE, epoch,
        sequence_id, prev_sect, log_head, crc, 0, len(entries))
    offset = _FIXED_SIZE
    entry_pack = _ENTRY_STRUCT.pack_into
    for entry in entries:
        entry_pack(packed, offset, *entry)
        offset += _ENTRY_SIZE
    _CRC_STRUCT.pack_into(packed, _HEADER_CRC_OFFSET, crc32(packed))
    packed += masked_payload
    return bytes(packed)


def encode_record(
    header: RecordHeader,
    payload_sectors: Sequence[bytes],
    sector_size: int = SECTOR_SIZE,
) -> List[bytes]:
    """Serialize a write record into on-disk sectors.

    ``payload_sectors[i]`` is the *original* content of the sector
    described by ``header.entries[i]``; its first byte must equal that
    entry's ``first_data_byte`` and is replaced by the 0x00 marker in
    the returned encoding.  Returns ``1 + batch_size`` sectors: the
    header sector followed by the masked payloads.
    """
    return encode_record_raw(
        header.epoch, header.sequence_id, header.prev_sect,
        header.log_head,
        [(entry.first_data_byte, entry.log_lba, entry.data_lba,
          entry.data_major, entry.data_minor)
         for entry in header.entries],
        payload_sectors, sector_size)


def payload_crc32(masked_sectors: Sequence[bytes]) -> int:
    """CRC-32 over the on-platter (masked) payload sector images."""
    crc = 0
    for sector in masked_sectors:
        crc = zlib.crc32(sector, crc)
    return crc


def decode_record_header(
    sector: bytes,
    expected_epoch: Optional[int] = None,
) -> RecordHeader:
    """Parse and validate a record-header sector.

    Raises :class:`LogFormatError` if the sector is not a valid Trail
    record header (wrong marker byte, signature, or an epoch mismatch
    when ``expected_epoch`` is given) — the recovery scanner relies on
    this to reject payload sectors and stale garbage.
    """
    if len(sector) < _FIXED_SIZE:
        raise LogFormatError(f"sector too short: {len(sector)} bytes")
    (first_byte, signature, epoch, sequence_id, prev_sect, log_head,
     payload_crc, header_crc, batch_size) = struct.unpack_from(
        _FIXED_FMT, sector)
    if first_byte != HEADER_FIRST_BYTE:
        raise LogFormatError(
            f"not a record header: first byte {first_byte:#04x}")
    if signature != TRAIL_SIGNATURE:
        raise LogFormatError(f"bad record signature: {signature!r}")
    zeroed = bytearray(sector)
    zeroed[_HEADER_CRC_OFFSET:_HEADER_CRC_OFFSET + 4] = b"\x00\x00\x00\x00"
    if zlib.crc32(zeroed) != header_crc:
        raise LogFormatError(
            f"record header checksum mismatch (sequence {sequence_id})")
    if batch_size > MAX_TRAIL_BATCH:
        raise LogFormatError(f"batch_size {batch_size} exceeds maximum")
    if expected_epoch is not None and epoch != expected_epoch:
        raise LogFormatError(
            f"record epoch {epoch} != expected {expected_epoch}")
    if len(sector) < _FIXED_SIZE + batch_size * _ENTRY_SIZE:
        raise LogFormatError("sector too short for declared batch size")

    entries = []
    offset = _FIXED_SIZE
    for _ in range(batch_size):
        first_data_byte, log_lba, data_lba, major, minor = struct.unpack_from(
            _ENTRY_FMT, sector, offset)
        offset += _ENTRY_SIZE
        entries.append(BatchEntry(
            data_lba=DataLba(data_lba), log_lba=LogLba(log_lba),
            first_data_byte=first_data_byte,
            data_major=major, data_minor=minor))
    return RecordHeader(epoch=epoch, sequence_id=sequence_id,
                        prev_sect=LogLba(prev_sect),
                        log_head=LogLba(log_head),
                        entries=tuple(entries), payload_crc=payload_crc,
                        header_crc=header_crc)


def is_record_header(sector: bytes, expected_epoch: Optional[int] = None) -> bool:
    """Cheap predicate used by track scans."""
    try:
        decode_record_header(sector, expected_epoch)
        return True
    except LogFormatError:
        return False


def restore_payload(entry: BatchEntry, masked_sector: bytes) -> bytes:
    """Undo the 0x00 first-byte masking of a logged payload sector."""
    if not masked_sector:
        raise LogFormatError("empty payload sector")
    if masked_sector[0] != PAYLOAD_FIRST_BYTE:
        raise LogFormatError(
            f"payload sector does not start with the 0x00 marker: "
            f"{masked_sector[0]:#04x}")
    return bytes([entry.first_data_byte]) + masked_sector[1:]


# ----------------------------------------------------------------------
# Global log-disk header and geometry record


def encode_disk_header(
    header: LogDiskHeader, sector_size: int = SECTOR_SIZE,
) -> bytes:
    """Serialize the global log-disk header into one sector."""
    body = struct.pack(_DISK_HEADER_BODY_FMT, TRAIL_SIGNATURE,
                       _DISK_HEADER_MAGIC, header.epoch, header.crash_var)
    packed = body + struct.pack("<I", zlib.crc32(body))
    return packed + bytes(sector_size - len(packed))


def decode_disk_header(sector: bytes) -> LogDiskHeader:
    """Parse the global log-disk header; raises if not a Trail disk.

    The trailing CRC32 turns a flipped bit in ``epoch`` or
    ``crash_var`` — which would otherwise silently skip recovery or
    scan the wrong epoch — into a loud :class:`LogFormatError`.
    """
    if len(sector) < struct.calcsize(_DISK_HEADER_FMT):
        raise LogFormatError("disk-header sector too short")
    signature, magic, epoch, crash_var, stored_crc = struct.unpack_from(
        _DISK_HEADER_FMT, sector)
    if signature != TRAIL_SIGNATURE:
        raise LogFormatError(
            f"disk signature {signature!r} is not a Trail log disk")
    if magic != _DISK_HEADER_MAGIC:
        raise LogFormatError(f"unknown format version magic {magic:#x}")
    body_size = struct.calcsize(_DISK_HEADER_BODY_FMT)
    if stored_crc != zlib.crc32(sector[:body_size]):
        raise LogFormatError("disk-header checksum mismatch")
    return LogDiskHeader(epoch=epoch, crash_var=crash_var)


def encode_geometry(
    geometry: DiskGeometry, sector_size: int = SECTOR_SIZE,
) -> bytes:
    """Serialize the physical-geometry record stored next to the header.

    §4.1: "The formatting tool writes the log disk's physical geometry
    data ... to the dedicated tracks"; §3.1 needs it back at boot for
    the prediction formula.
    """
    packed = bytearray(struct.pack(
        _GEOMETRY_FIXED_FMT, geometry.heads, geometry.sector_size,
        len(geometry.zones)))
    for zone in geometry.zones:
        packed += struct.pack(_GEOMETRY_ZONE_FMT, zone.cylinder_count,
                              zone.sectors_per_track)
    if len(packed) > sector_size:
        raise LogFormatError(
            f"geometry with {len(geometry.zones)} zones does not fit one "
            "sector")
    return bytes(packed) + bytes(sector_size - len(packed))


def decode_geometry(sector: bytes) -> DiskGeometry:
    """Reconstruct a :class:`DiskGeometry` from its on-disk record."""
    if len(sector) < struct.calcsize(_GEOMETRY_FIXED_FMT):
        raise LogFormatError("geometry sector too short")
    heads, sector_size, zone_count = struct.unpack_from(
        _GEOMETRY_FIXED_FMT, sector)
    zones = []
    offset = struct.calcsize(_GEOMETRY_FIXED_FMT)
    for _ in range(zone_count):
        if offset + struct.calcsize(_GEOMETRY_ZONE_FMT) > len(sector):
            raise LogFormatError("geometry sector truncated")
        cylinder_count, spt = struct.unpack_from(
            _GEOMETRY_ZONE_FMT, sector, offset)
        offset += struct.calcsize(_GEOMETRY_ZONE_FMT)
        zones.append(Zone(cylinder_count=cylinder_count,
                          sectors_per_track=spt))
    if not zones:
        raise LogFormatError("geometry record has no zones")
    return DiskGeometry(heads=heads, zones=zones, sector_size=sector_size)
