"""One Trail stack under one roof: the multi-instance facade.

Every entry point used to assemble the same five pieces by hand — a
:class:`~repro.sim.kernel.Simulation`, a formatted log drive, the data
targets, a :class:`~repro.core.driver.TrailDriver` (which owns the
:class:`~repro.core.buffer.BufferManager`, write-back scheduler, and
recovery manager), and the format/mount calls that bind them.  Ad-hoc
assembly is exactly how cross-instance state leaks slip in: anything a
component stashes at module scope is shared by *every* stack in the
process, which the ``tools/trailiso`` static pass forbids and the
``TRAILISO=1`` interleaved-twin harness checks at runtime.

:class:`TrailInstance` is the one sanctioned assembly.  Two instances
in one process share nothing but immutable module constants, so:

* running instance B must not perturb instance A's event order
  (``sim.trace`` is byte-identical solo vs interleaved), and
* the disk images each instance produces (:meth:`TrailInstance.
  fingerprint`) are byte-identical solo vs interleaved.

:func:`run_interleaved` round-robins several instances' simulations
one event at a time in a single process — the runtime twin of the
static isolation rules (TIS001–TIS005).
"""

from __future__ import annotations

import hashlib
from typing import (
    Any, Callable, Dict, Generic, List, Mapping, Optional, Sequence,
    Tuple, TypeVar)

from repro.blockdev import BlockDevice, DataTarget
from repro.core.config import TrailConfig
from repro.core.driver import TrailDriver
from repro.core.recovery import RecoveryReport
from repro.disk.drive import DiskDrive
from repro.disk.presets import DriveSpec, st41601n, wd_caviar_10gb
from repro.errors import SimulationError
from repro.sim import Event, Simulation
from repro.units import Sectors

#: What an instance fronts as a data disk: a raw drive or a RAID array.
DataT = TypeVar("DataT", bound=DataTarget)


class TrailInstance(Generic[DataT]):
    """A complete, self-contained Trail stack.

    The constructor takes *pre-built* drives so callers control
    creation order (event sequence numbers are handed out at drive
    construction, and the golden-trace tests pin the historical
    order); :meth:`build` covers the common case of building
    everything from specs.

    The attribute surface (``sim`` / ``driver`` / ``log_drive`` /
    ``data_drives``) deliberately matches the old ``TrailSystem``
    dataclass, so the ~30 benchmark and test call sites read
    unchanged.
    """

    def __init__(
        self,
        sim: Simulation,
        log_drive: DiskDrive,
        data_disks: Mapping[int, DataT],
        config: Optional[TrailConfig] = None,
        *,
        format_log: bool = True,
        mount: bool = True,
    ) -> None:
        self.sim = sim
        self.log_drive = log_drive
        self.data_drives: Dict[int, DataT] = dict(data_disks)
        trail_config = config if config is not None else TrailConfig()
        if format_log:
            TrailDriver.format_disk(log_drive, trail_config)
        self.driver = TrailDriver(
            sim, log_drive, self.data_drives, trail_config)
        #: Report of the most recent mount's recovery pass, if any.
        self.recovery: Optional[RecoveryReport] = None
        if mount:
            self.mount()

    @classmethod
    def build(
        cls,
        data_disk_count: int = 1,
        config: Optional[TrailConfig] = None,
        log_spec: Optional[DriveSpec] = None,
        data_spec: Optional[DriveSpec] = None,
        mount: bool = True,
        phase_drift: Optional[Callable[[float], float]] = None,
    ) -> "TrailInstance[DiskDrive]":
        """The paper's testbed: ST41601N log disk, WD Caviar data disks.

        With ``mount=True`` the simulation is advanced through format
        + mount so the returned driver is ready for requests.
        """
        sim = Simulation()
        log_drive = (log_spec or st41601n()).make_drive(
            sim, "trail-log", phase_drift=phase_drift)
        data_drives = {
            disk_id: (data_spec or wd_caviar_10gb()).make_drive(
                sim, f"data{disk_id}")
            for disk_id in range(data_disk_count)
        }
        return TrailInstance(sim, log_drive, data_drives, config,
                             mount=mount)

    @property
    def config(self) -> TrailConfig:
        """The driver's configuration."""
        return self.driver.config

    def mount(self) -> Optional[RecoveryReport]:
        """Advance the simulation through mount (and any recovery)."""
        report = self.sim.run_until(
            self.sim.process(self.driver.mount()))
        self.recovery = report
        return self.recovery

    def crash(self) -> None:
        """Cut power to the whole instance mid-flight."""
        self.driver.crash()

    def remount(self) -> Optional[RecoveryReport]:
        """Power the drives back on and mount a fresh driver.

        The crashed driver is discarded (its in-memory buffers died
        with the power); the replacement sees only what reached the
        platters, which is the whole point of the recovery path.
        Returns the recovery report and leaves it in :attr:`recovery`.
        """
        self.log_drive.power_on()
        for target in self.data_drives.values():
            target.power_on()
        self.driver = TrailDriver(
            self.sim, self.log_drive, self.data_drives,
            self.driver.config)
        return self.mount()

    # ------------------------------------------------------------------
    # Isolation checks

    def fingerprint(self) -> str:
        """Digest of every written sector this instance owns.

        Covers the log drive and every data target (RAID arrays
        contribute each member drive).  Two runs of the same seeded
        workload — solo or interleaved with other instances — must
        produce the same fingerprint; anything else means state leaked
        between instances.
        """
        digest = hashlib.sha256()
        drives: List[Any] = [self.log_drive]
        for disk_id in sorted(self.data_drives):
            target = self.data_drives[disk_id]
            members = getattr(target, "members", None)
            if members is None:
                drives.append(target)
            else:
                drives.extend(members)
        for drive in drives:
            store = getattr(drive, "store", None)
            if store is None:
                continue
            digest.update(drive.name.encode())
            for lba, nsectors in store.written_extents():
                digest.update(lba.to_bytes(8, "big"))
                digest.update(nsectors.to_bytes(4, "big"))
                digest.update(store.read(lba, nsectors))
        return digest.hexdigest()

    def trace_digest(self) -> str:
        """Digest of the recorded event-order trace.

        Requires ``sim.enable_trace()`` before the workload ran.
        """
        trace = self.sim.trace
        if trace is None:
            raise SimulationError(
                "trace_digest() needs sim.enable_trace() before the run")
        return _digest_trace(trace)


class BaselineInstance(Generic[DataT]):
    """A baseline (standard/LFS/DCD) driver and its drives.

    Same facade idea as :class:`TrailInstance` for the comparison
    systems; the attribute surface matches the old ``BaselineSystem``
    dataclass.
    """

    def __init__(
        self,
        sim: Simulation,
        driver: BlockDevice,
        data_drives: Mapping[int, DataT],
    ) -> None:
        self.sim = sim
        self.driver = driver
        self.data_drives: Dict[int, DataT] = dict(data_drives)

    @classmethod
    def build_standard(
        cls,
        data_disk_count: int = 1,
        data_spec: Optional[DriveSpec] = None,
    ) -> "BaselineInstance[DiskDrive]":
        """The paper's baseline: the data disks behind a plain driver."""
        from repro.baselines.standard import StandardDriver

        sim = Simulation()
        data_drives = {
            disk_id: (data_spec or wd_caviar_10gb()).make_drive(
                sim, f"data{disk_id}")
            for disk_id in range(data_disk_count)
        }
        driver = StandardDriver(sim, data_drives)
        return BaselineInstance(sim, driver, data_drives)

    @classmethod
    def build_lfs(
        cls,
        data_spec: Optional[DriveSpec] = None,
        segment_sectors: Sectors = 512,
    ) -> "BaselineInstance[DiskDrive]":
        """The related-work comparator: one disk behind the LFS driver."""
        from repro.baselines.lfs import LfsDriver

        sim = Simulation()
        data_drives = {
            0: (data_spec or wd_caviar_10gb()).make_drive(sim, "lfs0")}
        driver = LfsDriver(sim, data_drives,
                           segment_sectors=segment_sectors)
        return BaselineInstance(sim, driver, data_drives)


def run_interleaved(
        runs: Sequence[Tuple[TrailInstance[Any], Event]]) -> None:
    """Round-robin several instances until each target event fires.

    Each ``(instance, event)`` pair advances one dispatched event per
    round until its event has fired; instances whose event already
    fired sit out the remaining rounds.  Per-simulation event order is
    exactly what a solo :meth:`~repro.sim.kernel.Simulation.run_until`
    would produce — interleaving changes *which process's turn it is
    globally*, never the order within one simulation — so fingerprints
    and traces must match the solo runs.
    """
    pending = list(runs)
    while pending:
        still = []
        for instance, event in pending:
            if event.processed:
                continue
            if not instance.sim.step():
                raise SimulationError(
                    "interleaved event cannot fire: "
                    "the event heap is empty")
            still.append((instance, event))
        pending = [(instance, event) for instance, event in still
                   if not event.processed]


def _digest_trace(trace: Sequence[Tuple[float, int]]) -> str:
    """Stable hex digest of a ``(time, sequence)`` event trace."""
    digest = hashlib.sha256()
    for when, sequence in trace:
        digest.update(f"{when!r}:{sequence}\n".encode())
    return digest.hexdigest()
