"""The Trail driver's staging-buffer manager (§4.2).

Disk blocks that have been written to the log disk but not yet to their
data disk are pinned in host memory.  The manager implements the
paper's three buffer-page rules:

* **Immediate unlock** — a page is writable again as soon as its log
  write completes; a later write to the same page simply produces a new
  pinned version.
* **Queue dedup** — at most one write-back per page is queued at a
  time; newer versions piggyback on the queued entry, and the buffers
  of skipped requests are released.
* **Cancellation** — a data-disk write for a page that has been
  re-modified since its log write is cancelled; the newest version is
  written instead, and when it commits, *all* log records holding older
  versions of the page are released at once ("one or multiple log disk
  tracks ... may be reclaimed simultaneously").

Record bookkeeping lives here too: a :class:`LiveRecord` counts how
many of its logged sectors' pages remain uncommitted, and fires the
driver's release callback (which frees log-disk space and advances the
log head) when it hits zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import TrailError
from repro.units import Lba, LogLba, Sectors, Tracks


#: Identifies one buffered page: (data disk id, first LBA, sector count).
PageKey = Tuple[int, int, int]


@dataclass
class LiveRecord:
    """A write record on the log disk that is not yet fully committed."""

    sequence_id: int
    track: Tracks
    header_lba: LogLba
    nsectors: Sectors
    #: Pages (with their logged versions) this record still waits on.
    outstanding: int = 0
    released: bool = False
    #: Sectors of log-disk space the record occupies (header + payload).
    @property
    def footprint_sectors(self) -> Sectors:
        return 1 + self.nsectors


@dataclass
class PendingPage:
    """The newest uncommitted contents of one data-disk page."""

    key: PageKey
    data: bytes
    version: int = 0
    #: True while a write-back for this page sits in the queue.
    queued: bool = False
    #: True while a write-back for this page is being serviced.
    in_flight: bool = False
    #: (record, version at the time that record logged this page).
    references: List[Tuple[LiveRecord, int]] = field(default_factory=list)

    @property
    def disk_id(self) -> int:
        return self.key[0]

    @property
    def lba(self) -> Lba:
        return self.key[1]

    @property
    def nsectors(self) -> Sectors:
        return self.key[2]


class BufferManager:
    """Pins logged-but-uncommitted pages and tracks record liveness."""

    def __init__(
        self,
        on_record_released: Optional[Callable[[LiveRecord], None]] = None,
    ) -> None:
        self._pages: Dict[PageKey, PendingPage] = {}  # trailsan: atomic_group(pinned-accounting)
        #: Per-disk view of ``_pages`` (same insertion order), so the
        #: read-overlay scan in :meth:`find_covering` walks one disk's
        #: pinned pages instead of every disk's.
        self._by_disk: Dict[int, Dict[PageKey, PendingPage]] = {}
        #: Per-disk pinned-coverage refcount per sector, so a read that
        #: overlaps no pinned page (the common case) is rejected with a
        #: few dict probes instead of scanning every pinned page.
        self._cover: Dict[int, Dict[int, int]] = {}
        self._on_record_released = on_record_released
        self.pinned_bytes = 0  # trailsan: atomic_group(pinned-accounting)
        #: Write-backs skipped because a newer version superseded them.
        self.writes_cancelled = 0
        #: Queue entries saved by dedup.
        self.writes_deduplicated = 0

    def set_release_callback(
        self, callback: Callable[[LiveRecord], None],
    ) -> None:
        """Install the driver's record-release hook."""
        self._on_record_released = callback

    def accounting_error(self) -> Optional[str]:
        """None when ``pinned_bytes`` matches the pinned pages, else a
        description of the drift (the TRAILSAN pinned-accounting
        invariant)."""
        actual = 0
        for page in self._pages.values():
            actual += len(page.data)
        if actual != self.pinned_bytes:
            return (f"pinned_bytes={self.pinned_bytes} but the "
                    f"{len(self._pages)} pinned page(s) hold {actual} "
                    f"bytes")
        return None

    # ------------------------------------------------------------------
    # Introspection

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def pending_pages(self) -> int:
        """Number of distinct pages awaiting write-back."""
        return len(self._pages)

    def get_cached(self, disk_id: int, lba: Lba,
                   nsectors: Sectors) -> Optional[bytes]:
        """Serve a read from the pinned set if a page covers it exactly.

        The driver services reads "from the Trail driver's buffer
        memory" when possible (§4.3); partial overlaps fall through to
        the data disk.
        """
        page = self._pages.get((disk_id, lba, nsectors))
        if page is not None:
            return page.data
        return None

    def find_covering(self, disk_id: int, lba: Lba,
                      nsectors: Sectors) -> List[PendingPage]:
        """All pinned pages overlapping the extent (for read overlay)."""
        disk_pages = self._by_disk.get(disk_id)
        if not disk_pages:
            return []
        end = lba + nsectors
        cover = self._cover.get(disk_id)
        if cover is None or all(sector not in cover
                                for sector in range(lba, end)):
            return []
        return [
            page for (_disk, page_lba, page_ns), page in disk_pages.items()
            if page_lba < end and lba < page_lba + page_ns
        ]

    # ------------------------------------------------------------------
    # Write path

    def pin(
        self,
        disk_id: int,
        lba: Lba,
        data: bytes,
        sector_size: int,
    ) -> Tuple[PendingPage, int]:
        """Pin ``data`` as the newest version of page ``(disk_id, lba)``.

        Called once per logical write request when its (first) log write
        completes.  Returns the page and the new version number; the
        caller then :meth:`attach`\\ es every log record that carries a
        piece of this version.
        """
        nsectors = max(1, (len(data) + sector_size - 1) // sector_size)
        key: PageKey = (disk_id, lba, nsectors)
        page = self._pages.get(key)
        if page is None:
            page = PendingPage(key=key, data=bytes(data))
            self._pages[key] = page
            self._by_disk.setdefault(disk_id, {})[key] = page
            cover = self._cover.setdefault(disk_id, {})
            cover_get = cover.get
            for sector in range(lba, lba + nsectors):
                cover[sector] = cover_get(sector, 0) + 1
            self.pinned_bytes += len(data)
        else:
            # Re-pinning may change the byte length within the same
            # sector count; the accounting must track the bytes that
            # committed() will eventually subtract.
            self.pinned_bytes += len(data) - len(page.data)
            page.data = bytes(data)
            if page.queued or page.in_flight:
                self.writes_deduplicated += 1
        page.version += 1
        return page, page.version

    def attach(
        self, record: LiveRecord, page: PendingPage, version: int,
    ) -> None:
        """Tie ``record`` to ``page``'s ``version``.

        The record stays live (its log track stays used) until a
        write-back at or above that version commits.
        """
        if self._pages.get(page.key) is not page:
            raise TrailError(f"attach() to unpinned page {page.key}")
        page.references.append((record, version))
        record.outstanding += 1

    # ------------------------------------------------------------------
    # Commit path (called by the write-back scheduler)

    def committed(self, page: PendingPage, version: int) -> bool:
        """A write-back of ``page`` at ``version`` reached the data disk.

        Releases every record reference at or below ``version``.
        Returns True if the page is fully committed (no newer version
        pending) and has been dropped from the pinned set; False if a
        newer version still needs a write-back.
        """
        if self._pages.get(page.key) is not page:
            raise TrailError(f"committed() for unknown page {page.key}")
        # In the common case every reference releases; reuse the list in
        # place and only allocate ``remaining`` when something survives.
        references = page.references
        remaining: Optional[List[Tuple[LiveRecord, int]]] = None
        for record, logged_version in references:
            if logged_version <= version:
                self._release_reference(record)
                if logged_version < version:
                    # An older logged copy was superseded before it ever
                    # reached the data disk: the paper's cancelled write.
                    self.writes_cancelled += 1
            else:
                if remaining is None:
                    remaining = []
                remaining.append((record, logged_version))
        if remaining is None:
            references.clear()
        else:
            page.references = remaining
        if remaining is None and page.version <= version:
            disk_id, lba, nsectors = page.key
            del self._pages[page.key]
            del self._by_disk[disk_id][page.key]
            cover = self._cover[disk_id]
            for sector in range(lba, lba + nsectors):
                count = cover[sector] - 1
                if count:
                    cover[sector] = count
                else:
                    del cover[sector]
            self.pinned_bytes -= len(page.data)
            return True
        return False

    def _release_reference(self, record: LiveRecord) -> None:
        if record.outstanding <= 0:
            raise TrailError(
                f"record {record.sequence_id} over-released")
        record.outstanding -= 1
        if record.outstanding == 0 and not record.released:
            record.released = True
            if self._on_record_released is not None:
                self._on_record_released(record)

    # ------------------------------------------------------------------
    # Crash modelling

    def drop_all(self) -> None:
        """Forget every pinned page (host memory lost in a power failure)."""
        self._pages.clear()
        self._by_disk.clear()
        self._cover.clear()
        self.pinned_bytes = 0
