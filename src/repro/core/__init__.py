"""Trail: track-based disk logging — the paper's primary contribution.

Public entry point is :class:`TrailDriver`; the submodules implement
the mechanisms it composes: head-position prediction, the
self-describing log format, circular FIFO track allocation, staged
buffering with write-back, and crash recovery.
"""

from repro.core.allocator import TrackAllocator
from repro.core.buffer import BufferManager, LiveRecord, PendingPage
from repro.core.config import MAX_TRAIL_BATCH, TRAIL_SIGNATURE, TrailConfig
from repro.core.driver import TrailDriver, TrailStats, reserved_layout
from repro.core.instance import (
    BaselineInstance, TrailInstance, run_interleaved)
from repro.core.format import (
    BatchEntry, HEADER_FIRST_BYTE, LogDiskHeader, NULL_LBA,
    PAYLOAD_FIRST_BYTE, RecordHeader, decode_disk_header,
    decode_record_header, encode_disk_header, encode_record,
    is_record_header, restore_payload)
from repro.core.multilog import StripedTrailDriver
from repro.core.prediction import CalibrationResult, HeadPositionPredictor
from repro.core.recovery import LocatedRecord, RecoveryManager, RecoveryReport
from repro.core.writeback import WritebackScheduler

__all__ = [
    "BaselineInstance",
    "BatchEntry",
    "BufferManager",
    "CalibrationResult",
    "HEADER_FIRST_BYTE",
    "HeadPositionPredictor",
    "LiveRecord",
    "LocatedRecord",
    "LogDiskHeader",
    "MAX_TRAIL_BATCH",
    "NULL_LBA",
    "PAYLOAD_FIRST_BYTE",
    "PendingPage",
    "RecordHeader",
    "RecoveryManager",
    "RecoveryReport",
    "StripedTrailDriver",
    "TRAIL_SIGNATURE",
    "TrackAllocator",
    "TrailConfig",
    "TrailDriver",
    "TrailInstance",
    "TrailStats",
    "WritebackScheduler",
    "decode_disk_header",
    "decode_record_header",
    "encode_disk_header",
    "encode_record",
    "is_record_header",
    "reserved_layout",
    "restore_payload",
    "run_interleaved",
]
