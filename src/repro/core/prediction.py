"""Disk-head position prediction (§3.1).

Commodity disks cannot be told "write wherever the head is", so Trail
*predicts* where the head will be and addresses the write there.  The
predictor keeps a reference point ``(T0, LBA0)`` — a timestamp taken
immediately after a repositioning read completes, paired with the block
address the head moved to — and extrapolates the platter's angle from
the rotation period stored in the on-disk geometry record:

    S1 = (((T1 - T0) mod RotateTime) / RotateTime * SPT + S0 + δ) mod SPT

δ is an empirically derived sector offset covering command-processing
and other fixed overheads; it is measured by :meth:`calibrate`, which
reproduces the paper's procedure (sweep δ upward until single-sector
writes stop paying a full rotation).

The predictor never reads the simulator's ground-truth head position:
everything is computed from its own reference point, so rotation-speed
drift makes predictions go stale exactly as on real hardware — which
is what the periodic idle repositioning exists to fix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional

from repro.disk.drive import DiskDrive
from repro.disk.geometry import DiskGeometry
from repro.errors import TrailError
from repro.sim import Event, LatencyRecorder, Simulation
from repro.units import Lba, Ms, Sectors, Tracks


@dataclass
class CalibrationResult:
    """Outcome of a δ-calibration sweep."""

    #: The chosen δ in sectors: smallest value that avoids a full
    #: rotation on every sample.
    delta_sectors: int
    #: Mean measured write latency per candidate δ, for inspection.
    latencies_by_delta: List[float]
    #: Number of single-sector calibration writes issued.
    writes_issued: int


class HeadPositionPredictor:
    """Predicts the sector under the log disk's head at a future instant."""

    def __init__(
        self,
        geometry: DiskGeometry,
        rotation_ms: Ms,
        delta_sectors: Sectors = 0,
    ) -> None:
        if rotation_ms <= 0:
            raise TrailError(f"rotation time must be positive, got {rotation_ms}")
        if delta_sectors < 0:
            raise TrailError(f"delta must be >= 0, got {delta_sectors}")
        self.geometry = geometry
        self.rotation_ms = rotation_ms
        self.delta_sectors = delta_sectors
        self._t0: Optional[float] = None
        self._angle0: Optional[float] = None
        #: Realized rotational waits of predicted writes (driver-fed).
        self.realized_rotation = LatencyRecorder()

    @property
    def has_reference(self) -> bool:
        """True once a reference point has been anchored."""
        return self._t0 is not None

    @property
    def reference_age_ms(self) -> Optional[Ms]:
        """How long ago the reference was anchored (None if never).

        Callers pass the current time; kept as data so the idle
        repositioner can decide when to re-anchor.
        """
        return self._t0

    def set_reference(self, t0: Ms, lba0: Lba) -> None:
        """Anchor the reference point after a repositioning access.

        ``lba0`` is the block the head just finished reading/writing at
        time ``t0``; the head therefore sits at the *end* of that
        sector's angular span.
        """
        cylinder, _head, sector = self.geometry.lba_to_chs(lba0)
        spt = self.geometry.sectors_per_track(cylinder)
        self._t0 = t0
        self._angle0 = ((sector + 1) % spt) / spt

    def predict_angle(self, t1: Ms) -> float:
        """Predicted platter phase in [0, 1) at time ``t1``."""
        if self._t0 is None or self._angle0 is None:
            raise TrailError("prediction requested before a reference was set")
        return (self._angle0 + (t1 - self._t0) / self.rotation_ms) % 1.0

    def predict_sector(self, t1: Ms, track: Tracks) -> Sectors:
        """Predicted sector index on ``track`` for a write issued at ``t1``.

        Applies δ: the returned sector is far enough ahead of the head
        that the command-processing overhead elapses before the target
        comes around.
        """
        spt = self.geometry.track_sectors(track)
        base = int(self.predict_angle(t1) * spt)
        return (base + self.delta_sectors) % spt

    def predict_lba(self, t1: Ms, track: Tracks) -> Lba:
        """Predicted target LBA on ``track`` for a write issued at ``t1``."""
        return (self.geometry.track_first_lba(track)
                + self.predict_sector(t1, track))

    # ------------------------------------------------------------------

    def calibrate(
        self,
        sim: Simulation,
        drive: DiskDrive,
        track: Tracks = 1,
        max_delta: Optional[int] = None,
        samples_per_delta: int = 3,
        consecutive_required: int = 2,
    ) -> Generator[Event, Any, CalibrationResult]:
        """Measure δ against a real (simulated) drive — run as a process.

        Reproduces the paper's procedure: anchor a reference with a
        single-sector read, then for each candidate δ issue
        single-sector writes at the predicted position and measure their
        latency.  A δ is *good* if no sample pays a (near-)full
        rotation.  The chosen δ is the smallest good value that is
        followed by ``consecutive_required - 1`` further good values
        (guarding against a lucky sample at a too-small δ).

        Returns a :class:`CalibrationResult`; also installs the chosen
        δ on this predictor.
        """
        spt = self.geometry.track_sectors(track)
        if max_delta is None:
            max_delta = spt - 1
        sector_time = self.rotation_ms / spt
        # A correct δ costs at most the residual wait to the next sector
        # boundary plus transfer; "full rotation" failures cost nearly
        # rotation_ms more.  Half a rotation cleanly separates the two.
        failure_threshold = (drive.command_overhead_ms + sector_time
                             + 0.5 * self.rotation_ms)

        latencies: List[float] = []
        writes_issued = 0
        good_run_start: Optional[int] = None
        chosen: Optional[int] = None
        saved_delta = self.delta_sectors

        for delta in range(max_delta + 1):
            self.delta_sectors = delta
            worst = 0.0
            total = 0.0
            for _ in range(samples_per_delta):
                # Re-anchor: read one sector on the calibration track.
                anchor_lba = self.geometry.track_first_lba(track)
                result = yield drive.read(anchor_lba, 1)
                self.set_reference(sim.now, anchor_lba)
                target = self.predict_lba(sim.now, track)
                result = yield drive.write(target, bytes([delta % 256]) * self.geometry.sector_size)
                writes_issued += 1
                worst = max(worst, result.latency_ms)
                total += result.latency_ms
            latencies.append(total / samples_per_delta)
            if worst < failure_threshold:
                if good_run_start is None:
                    good_run_start = delta
                if delta - good_run_start + 1 >= consecutive_required:
                    chosen = good_run_start
                    break
            else:
                good_run_start = None

        if chosen is None:
            self.delta_sectors = saved_delta
            raise TrailError(
                f"delta calibration failed: no good delta in [0, {max_delta}]")
        self.delta_sectors = chosen
        return CalibrationResult(
            delta_sectors=chosen,
            latencies_by_delta=latencies,
            writes_issued=writes_issued)
