"""Circular FIFO track allocation for the log disk (§4.2, §4.4).

The entire log disk is a circular buffer whose basic unit is the
*track*.  The allocator maintains the paper's core invariant — the
head always sits on a track with enough free space that the next write
can proceed without overwriting live data — and the FIFO discipline
that makes Trail's garbage collection free: tracks are reused strictly
in the order they were filled, and a track is only reclaimed once
every record on it has been committed to the data disks.

Within the active track the allocator also answers placement queries:
given the predicted head sector, find the closest free contiguous run
that can hold a record, which is what bounds rotational latency.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.disk.geometry import DiskGeometry
from repro.errors import LogDiskFullError, TrailError
from repro.units import Lba, Sectors, Tracks


class TrackAllocator:
    """Allocates log-disk space in FIFO track order."""

    def __init__(
        self,
        geometry: DiskGeometry,
        usable_tracks: Sequence[int],
    ) -> None:
        if not usable_tracks:
            raise TrailError("allocator needs at least one usable track")
        self.geometry = geometry
        self._tracks: Tuple[int, ...] = tuple(usable_tracks)
        if len(set(self._tracks)) != len(self._tracks):
            raise TrailError("usable_tracks contains duplicates")
        self._position = 0
        #: Used (start, length) runs on the current track, sorted.
        self._used_runs: List[Tuple[int, int]] = []
        #: Live (uncommitted) record count per in-window track.
        self._live_counts: Dict[int, int] = {}
        #: Tracks in fill order that still hold live records (FIFO window).
        self._window: Deque[int] = deque()
        #: Final utilization of each retired track, for the §5.2 numbers.
        self.retired_utilizations: List[float] = []
        #: Total tracks consumed (advances), for space-efficiency stats.
        self.tracks_consumed = 0

    # ------------------------------------------------------------------
    # Introspection

    @property
    def current_track(self) -> Tracks:
        """The active (tail) track the head is parked on."""
        return self._tracks[self._position]

    @property
    def track_count(self) -> int:
        """Number of tracks in the circular log."""
        return len(self._tracks)

    @property
    def live_track_count(self) -> int:
        """Tracks currently holding at least one uncommitted record."""
        return sum(1 for count in self._live_counts.values() if count > 0)

    def used_sectors(self, track: Optional[Tracks] = None) -> Sectors:
        """Used sector count on ``track`` (default: the current track)."""
        if track is not None and track != self.current_track:
            raise TrailError(
                "per-sector accounting only exists for the current track")
        return sum(length for _start, length in self._used_runs)

    def utilization(self) -> float:
        """Fraction of the current track already written."""
        spt = self.geometry.track_sectors(self.current_track)
        return self.used_sectors() / spt

    def free_sectors(self) -> Sectors:
        """Free sectors remaining on the current track."""
        spt = self.geometry.track_sectors(self.current_track)
        return spt - self.used_sectors()

    def largest_free_run(self) -> int:
        """Length of the largest contiguous free run on the current track."""
        spt = self.geometry.track_sectors(self.current_track)
        best = 0
        cursor = 0
        for start, length in self._used_runs:
            best = max(best, start - cursor)
            cursor = start + length
        return max(best, spt - cursor)

    def mean_retired_utilization(self) -> float:
        """Average final utilization of retired tracks (§5.2 metric)."""
        if not self.retired_utilizations:
            return 0.0
        return sum(self.retired_utilizations) / len(self.retired_utilizations)

    # ------------------------------------------------------------------
    # Placement on the current track

    def place(self, preferred_sector: Sectors,
              nsectors: Sectors) -> Optional[Sectors]:
        """Find a free contiguous run of ``nsectors`` on the current track.

        Prefers the run starting exactly at ``preferred_sector`` (the
        predicted head position); otherwise returns the start of the
        next free run at or after it, wrapping to earlier sectors as a
        last resort.  Returns None if no run fits — the caller should
        advance to the next track.  Runs never wrap past the end of the
        track because sector LBAs would not be contiguous.
        """
        spt = self.geometry.track_sectors(self.current_track)
        if not 0 <= preferred_sector < spt:
            raise TrailError(
                f"preferred sector {preferred_sector} out of range "
                f"[0, {spt})")
        if nsectors < 1 or nsectors > spt:
            return None

        free_runs = self._free_runs(spt)
        # Candidate start positions: within each free run, the earliest
        # position >= preferred that still fits; plus the run start
        # itself for the wrapped pass.
        best: Optional[int] = None
        best_distance: Optional[int] = None
        for start, length in free_runs:
            candidate: Optional[int] = None
            if start + length <= preferred_sector:
                candidate = None  # run entirely before the head; wrap case
            elif start >= preferred_sector:
                candidate = start
            else:
                candidate = preferred_sector
            if candidate is not None and candidate + nsectors <= start + length:
                distance = candidate - preferred_sector
                if best_distance is None or distance < best_distance:
                    best, best_distance = candidate, distance
        if best is not None:
            return best
        # Wrapped pass: any run that fits, closest after wrap-around.
        for start, length in free_runs:
            if nsectors <= length:
                distance = (start - preferred_sector) % spt
                if best_distance is None or distance < best_distance:
                    best, best_distance = start, distance
        return best

    def commit_placement(self, start_sector: Sectors,
                         nsectors: Sectors) -> Lba:
        """Mark ``nsectors`` at ``start_sector`` used; returns the LBA.

        Also counts one live record on the current track.
        """
        spt = self.geometry.track_sectors(self.current_track)
        if start_sector < 0 or start_sector + nsectors > spt:
            raise TrailError(
                f"placement [{start_sector}, {start_sector + nsectors}) "
                f"exceeds track size {spt}")
        for used_start, used_length in self._used_runs:
            if (start_sector < used_start + used_length
                    and used_start < start_sector + nsectors):
                raise TrailError(
                    f"placement [{start_sector}, {start_sector + nsectors}) "
                    f"overlaps used run [{used_start}, "
                    f"{used_start + used_length})")
        self._used_runs.append((start_sector, nsectors))
        self._used_runs.sort()
        track = self.current_track
        if track not in self._live_counts:
            self._live_counts[track] = 0
            self._window.append(track)
        self._live_counts[track] += 1
        return self.geometry.track_first_lba(track) + start_sector

    def _free_runs(self, spt: int) -> List[Tuple[int, int]]:
        runs: List[Tuple[int, int]] = []
        cursor = 0
        for start, length in self._used_runs:
            if start > cursor:
                runs.append((cursor, start - cursor))
            cursor = start + length
        if cursor < spt:
            runs.append((cursor, spt - cursor))
        return runs

    # ------------------------------------------------------------------
    # Track rotation (FIFO)

    def advance(self) -> int:
        """Move the tail to the next free track and return it.

        Raises :class:`LogDiskFullError` if the next track in circular
        order still holds live records — the entire log is full (§4.4).
        """
        self._reap_window()
        spt = self.geometry.track_sectors(self.current_track)
        self.retired_utilizations.append(self.used_sectors() / spt)
        self.tracks_consumed += 1

        next_position = (self._position + 1) % len(self._tracks)
        next_track = self._tracks[next_position]
        if self._live_counts.get(next_track, 0) > 0 or (
                self._window and self._window[0] == next_track):
            raise LogDiskFullError(
                f"log disk full: track {next_track} still holds "
                f"{self._live_counts.get(next_track, 0)} live records")
        self._position = next_position
        self._used_runs = []
        # Stale accounting from the previous lap, if any.
        self._live_counts.pop(next_track, None)
        return next_track

    def record_released(self, track: Tracks) -> None:
        """One record on ``track`` was committed to its data disk."""
        count = self._live_counts.get(track)
        if not count:
            raise TrailError(
                f"release on track {track} with no live records")
        self._live_counts[track] = count - 1
        self._reap_window()

    def _reap_window(self) -> None:
        """Free fully committed tracks from the FIFO head.

        A mid-window track whose records all committed early stays
        allocated until it reaches the head: deallocation is strictly
        FIFO, which is what keeps Trail's cleaning cost at zero.
        """
        while self._window:
            head = self._window[0]
            if head == self.current_track:
                break
            if self._live_counts.get(head, 0) > 0:
                break
            self._window.popleft()
            self._live_counts.pop(head, None)
