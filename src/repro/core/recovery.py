"""Crash recovery for the Trail log disk (§3.3, Figure 4).

Recovery runs in three steps, each timed separately so the Figure 4(a)
breakdown can be reproduced:

1. **Locate** the youngest active write record — the one whose epoch
   matches the log-disk header and whose sequence id is the global
   maximum.  Because the circular log fills tracks in a fixed physical
   order, each track's newest sequence id is "rotated sorted" across
   the track ring, so a binary search needs only O(lg N) track scans
   (~20 for the paper's 35,717-track disk) instead of reading the whole
   disk.
2. **Rebuild** the chain of potentially uncommitted records by walking
   the ``prev_sect`` back pointers, stopping at the youngest record's
   ``log_head`` bound — the oldest record that was uncommitted when the
   youngest was written.  Everything older is already on the data disks.
3. **Write back** the pending records to the data disks in increasing
   sequence order (issue order), restoring each payload sector's
   displaced first byte.  This step is optional: skipping it does not
   compromise integrity because the log-disk copy persists (Fig. 4(b)),
   and it dominates recovery time because its data-disk accesses are
   random.

Beyond the paper's power-loss-only model, recovery also survives a
faulty log disk: track scans fall back to sector-by-sector reads and
skip unreadable sectors; every record is checksum-verified (header and
payload CRCs) before replay; a record that fails verification is never
replayed — its sectors are reported in the
:class:`RecoveryReport` (``corrupt_records``, ``dropped_sectors``)
instead of silently replaying garbage or silently dropping data.  A
double failure (host memory lost in the crash *and* the log copy
unreadable or corrupt) is therefore always visible to the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any, Dict, Generator, List, Mapping, Optional, Sequence, Tuple)

from repro.blockdev import DataTarget
from repro.core.config import TrailConfig
from repro.core.format import (
    RecordHeader, NULL_LBA, decode_record_header, payload_crc32,
    restore_payload)
from repro.disk.drive import DiskDrive
from repro.disk.geometry import DiskGeometry
from repro.errors import LogFormatError, MediaError, RecoveryError
from repro.sim import Event, Simulation
from repro.units import Ms


@dataclass
class LocatedRecord:
    """A record header found on disk, with its own address."""

    header_lba: int
    header: RecordHeader


@dataclass
class RecoveryReport:
    """Timing and volume breakdown of one recovery run (Figure 4)."""

    locate_ms: float = 0.0
    rebuild_ms: float = 0.0
    writeback_ms: float = 0.0
    tracks_scanned: int = 0
    records_found: int = 0
    sectors_replayed: int = 0
    data_writes_issued: int = 0
    writeback_performed: bool = False
    #: Youngest records discarded because the crash tore them (header
    #: on the platter, payload incomplete).  A torn record was never
    #: acknowledged, so dropping it loses nothing — unless silent
    #: corruption mimicked a tear, which is why the affected sectors
    #: also appear in :attr:`dropped_sectors`.
    torn_records_dropped: int = 0
    youngest_sequence: Optional[int] = None
    #: The pending chain, oldest first (exposed so a caller that skips
    #: the write-back step can hand the records to a background process).
    pending: List[LocatedRecord] = field(default_factory=list)
    #: Log-disk sectors that could not be read (skipped during scans).
    unreadable_sectors: int = 0
    #: Pending records that failed checksum verification or could not
    #: be read during replay (excludes the legal torn youngest).
    corrupt_records: int = 0
    #: ``(disk_id, data_lba)`` pairs whose logged copy was dropped
    #: without being replayed (torn, corrupt, or unreadable record, or
    #: a failed data-disk write) and that no intact later record
    #: superseded.  Each is either already on its data disk from an
    #: earlier write-back or genuinely lost — never silently dropped.
    dropped_sectors: List[Tuple[int, int]] = field(default_factory=list)
    #: True when the prev_sect chain walk hit an unreadable or
    #: non-decodable sector before reaching the log_head bound: records
    #: older than the break could not be enumerated.
    chain_broken: bool = False

    @property
    def damaged(self) -> bool:
        """True when recovery detected any unrecoverable damage."""
        return bool(self.corrupt_records or self.dropped_sectors
                    or self.chain_broken)

    @property
    def total_ms(self) -> Ms:
        """End-to-end recovery time."""
        return self.locate_ms + self.rebuild_ms + self.writeback_ms


class RecoveryManager:
    """Executes the three-step recovery procedure as a sim process."""

    def __init__(
        self,
        sim: Simulation,
        log_drive: DiskDrive,
        geometry: DiskGeometry,
        usable_tracks: Sequence[int],
        epoch: int,
        data_disks: Mapping[int, DataTarget],
        config: Optional[TrailConfig] = None,
    ) -> None:
        self.sim = sim
        self.log_drive = log_drive
        self.geometry = geometry
        self.usable_tracks = tuple(usable_tracks)
        self.epoch = epoch
        self.data_disks = data_disks
        self.config = config or TrailConfig()
        self._track_cache: Dict[int, Optional[LocatedRecord]] = {}  # trailsan: atomic_group(scan-state)
        self._report = RecoveryReport()  # trailsan: atomic_group(scan-state)

    def run(self) -> Generator[Event, Any, RecoveryReport]:
        """Full recovery; yields disk I/O, returns a RecoveryReport."""
        report = self._report
        start = self.sim.now

        youngest = yield from self._locate()
        youngest = yield from self._discard_torn(youngest)
        report.locate_ms = self.sim.now - start
        if youngest is None:
            report.dropped_sectors = sorted(set(report.dropped_sectors))
            return report
        report.youngest_sequence = youngest.header.sequence_id

        rebuild_start = self.sim.now
        chain = yield from self._rebuild(youngest)
        report.rebuild_ms = self.sim.now - rebuild_start
        report.records_found = len(chain)
        report.pending = chain

        if self.config.recovery_writeback:
            writeback_start = self.sim.now
            yield from self.replay(chain)
            report.writeback_ms = self.sim.now - writeback_start
            report.writeback_performed = True
        report.dropped_sectors = sorted(set(report.dropped_sectors))
        return report

    # ------------------------------------------------------------------
    # Step 1: locate the youngest active record

    def _locate(self) -> Generator[Event, Any, Optional[LocatedRecord]]:
        if self.config.binary_search_recovery:
            return (yield from self._locate_binary())
        return (yield from self._locate_sequential())

    def _locate_sequential(
        self,
    ) -> Generator[Event, Any, Optional[LocatedRecord]]:
        """Scan every track; baseline for the binary-search ablation."""
        youngest: Optional[LocatedRecord] = None
        for position in range(len(self.usable_tracks)):
            candidate = yield from self._scan_position(position)
            if candidate is not None and (
                    youngest is None
                    or candidate.header.sequence_id
                    > youngest.header.sequence_id):
                youngest = candidate
        return youngest

    def _locate_binary(
        self,
    ) -> Generator[Event, Any, Optional[LocatedRecord]]:
        """O(lg N) track scans via the rotated-order property.

        Writes fill usable tracks in a fixed circular order starting at
        position 0 each epoch, so each position's newest sequence id is
        non-decreasing along the current lap and strictly greater than
        every value left over from the previous lap.  The predicate
        "position i holds a current-epoch record with sequence id >=
        the one at position 0" is therefore true on a prefix [0, p] and
        false after it, and the youngest record sits at position p.
        """
        first = yield from self._scan_position(0)
        if first is None:
            # Position 0 is written before any other track each epoch;
            # nothing there means no records at all this epoch.
            return None
        base_sequence = first.header.sequence_id

        low, high = 0, len(self.usable_tracks) - 1
        # Invariant: predicate(low) is true; find the last true position.
        while low < high:
            mid = (low + high + 1) // 2
            candidate = yield from self._scan_position(mid)
            if (candidate is not None
                    and candidate.header.sequence_id >= base_sequence):
                low = mid
            else:
                high = mid - 1
        return (yield from self._scan_position(low))

    def _scan_position(
        self, position: int,
    ) -> Generator[Event, Any, Optional[LocatedRecord]]:
        """Read one track and return its youngest current-epoch record.

        A track read that fails with a media error falls back to
        sector-by-sector reads, skipping (and counting) unreadable
        sectors, so one grown defect cannot hide a whole track's
        records from the locate step.
        """
        track = self.usable_tracks[position]
        if track in self._track_cache:
            return self._track_cache[track]
        first_lba = self.geometry.track_first_lba(track)
        nsectors = self.geometry.track_sectors(track)
        sector_size = self.geometry.sector_size
        sectors: List[Optional[bytes]] = []
        try:
            result = yield self.log_drive.read(first_lba, nsectors)
            sectors = [result.data[index * sector_size:
                                   (index + 1) * sector_size]
                       for index in range(nsectors)]
        except MediaError:
            for index in range(nsectors):
                try:
                    result = yield self.log_drive.read(first_lba + index, 1)
                    sectors.append(result.data)
                except MediaError:
                    sectors.append(None)
                    self._report.unreadable_sectors += 1
        self._report.tracks_scanned += 1
        youngest: Optional[LocatedRecord] = None
        for index, raw in enumerate(sectors):
            if raw is None:
                continue
            try:
                header = decode_record_header(raw, expected_epoch=self.epoch)
            except LogFormatError:
                continue
            if (youngest is None
                    or header.sequence_id > youngest.header.sequence_id):
                youngest = LocatedRecord(header_lba=first_lba + index,
                                         header=header)
        self._track_cache[track] = youngest
        return youngest

    def _discard_torn(
        self, located: Optional[LocatedRecord],
    ) -> Generator[Event, Any, Optional[LocatedRecord]]:
        """Drop the youngest record if the crash tore it.

        Log writes are strictly sequential (one physical command at a
        time), so only the globally youngest record can have a
        persisted header with an incomplete payload — and its write
        never completed, so it was never acknowledged.  Verify its
        payload CRC; on mismatch, step back along ``prev_sect``.
        """
        while located is not None:
            header = located.header
            if header.batch_size == 0:
                return located
            sector_size = self.geometry.sector_size
            intact = False
            try:
                result = yield self.log_drive.read(located.header_lba + 1,
                                                   header.batch_size)
                masked = [result.data[index * sector_size:
                                      (index + 1) * sector_size]
                          for index in range(header.batch_size)]
                intact = payload_crc32(masked) == header.payload_crc
            except MediaError:
                # Payload unreadable: indistinguishable from a tear.
                self._report.unreadable_sectors += 1
            if intact:
                return located
            self._report.torn_records_dropped += 1
            # A legal tear was never acknowledged; but corruption of an
            # acknowledged record looks identical, so the dropped
            # sectors are reported rather than silently discarded.
            for entry in header.entries:
                self._report.dropped_sectors.append(
                    (entry.data_major, entry.data_lba))
            prev_lba = header.prev_sect
            if prev_lba == NULL_LBA:
                return None
            try:
                result = yield self.log_drive.read(prev_lba, 1)
            except MediaError:
                self._report.unreadable_sectors += 1
                self._report.chain_broken = True
                return None
            try:
                prev_header = decode_record_header(
                    result.data, expected_epoch=self.epoch)
            except LogFormatError:
                return None
            located = LocatedRecord(header_lba=prev_lba,
                                    header=prev_header)
        return located

    # ------------------------------------------------------------------
    # Step 2: rebuild the pending chain

    def _rebuild(
        self, youngest: LocatedRecord,
    ) -> Generator[Event, Any, List[LocatedRecord]]:
        """Walk prev_sect back to the log_head bound; oldest first."""
        bound = (youngest.header.log_head
                 if self.config.log_head_bound_enabled else NULL_LBA)
        chain: List[LocatedRecord] = [youngest]
        seen = {youngest.header_lba}
        current = youngest
        while True:
            if current.header_lba == bound:
                break  # the log_head record itself is the oldest pending
            prev_lba = current.header.prev_sect
            if prev_lba == NULL_LBA:
                break
            if prev_lba in seen:
                raise RecoveryError(
                    f"prev_sect cycle detected at LBA {prev_lba}")
            try:
                result = yield self.log_drive.read(prev_lba, 1)
            except MediaError:
                # An unreadable header inside the pending chain: the
                # records older than the break cannot be enumerated.
                # Flag it — recovery proceeds with what it has, but the
                # caller must know the chain is incomplete.
                self._report.unreadable_sectors += 1
                self._report.chain_broken = True
                break
            try:
                header = decode_record_header(
                    result.data, expected_epoch=self.epoch)
            except LogFormatError:
                # With the log_head bound enabled, every hop between
                # the youngest record and the bound is a live record
                # whose space cannot have been reclaimed — a decode
                # failure before the bound means the header was
                # corrupted, not legitimately overwritten.
                if (self.config.log_head_bound_enabled
                        and bound != NULL_LBA):
                    self._report.corrupt_records += 1
                    self._report.chain_broken = True
                # Otherwise the chain ran into a sector overwritten by
                # an older epoch or reclaimed space: everything older
                # is already committed.
                break
            if header.sequence_id >= current.header.sequence_id:
                raise RecoveryError(
                    "prev_sect chain is not decreasing in sequence id "
                    f"({header.sequence_id} >= "
                    f"{current.header.sequence_id})")
            current = LocatedRecord(header_lba=prev_lba, header=header)
            seen.add(prev_lba)
            chain.append(current)
        chain.reverse()
        return chain

    # ------------------------------------------------------------------
    # Step 3: write pending records back to the data disks

    def replay(
        self, chain: Sequence[LocatedRecord],
    ) -> Generator[Event, Any, None]:
        """Propagate pending records to the data disks in issue order.

        Public so that a caller who deferred the write-back step
        (Fig. 4(b)) can run it in the background after recovery returns.

        A record whose payload is unreadable or fails its checksum is
        *never* replayed — garbage must not reach the data disks — and
        is reported instead: ``corrupt_records`` counts it, and every
        affected sector that no intact later record supersedes lands in
        ``dropped_sectors``.  Data-disk writes that fail despite the
        drive's own retries/remapping are reported the same way.
        """
        sector_size = self.geometry.sector_size
        #: (disk_id, data_lba) -> sequence id of the newest record that
        #: successfully replayed that sector.
        replayed: Dict[Tuple[int, int], int] = {}
        #: (sequence id, disk_id, data_lba) of sectors not replayed.
        at_risk: List[Tuple[int, int, int]] = []
        for located in sorted(chain, key=lambda r: r.header.sequence_id):
            header = located.header
            if header.batch_size == 0:
                continue
            sequence = header.sequence_id
            masked: Optional[List[bytes]] = None
            try:
                payload = yield self.log_drive.read(
                    located.header_lba + 1, header.batch_size)
                masked = [payload.data[index * sector_size:
                                       (index + 1) * sector_size]
                          for index in range(header.batch_size)]
            except MediaError:
                self._report.unreadable_sectors += 1
            if masked is None or payload_crc32(masked) != header.payload_crc:
                # Unreadable, or silently corrupted on the platter
                # (only the youngest record can legally be torn, and
                # _discard_torn already handled it).
                self._report.corrupt_records += 1
                for entry in header.entries:
                    at_risk.append((sequence, entry.data_major,
                                    entry.data_lba))
                continue
            restored: List[bytes] = []
            for index, entry in enumerate(header.entries):
                raw = masked[index]
                if entry.log_lba != located.header_lba + 1 + index:
                    raise RecoveryError(
                        f"record {sequence} entry {index} log "
                        f"LBA {entry.log_lba} is not contiguous with its "
                        "header")
                restored.append(restore_payload(entry, raw))
            # Group consecutive entries targeting contiguous data-disk
            # sectors into single writes.
            for disk_id, lba, data in _coalesce(header, restored):
                disk = self.data_disks.get(disk_id)
                if disk is None:
                    raise RecoveryError(
                        f"record {sequence} targets unknown "
                        f"data disk {disk_id}")
                nsectors = len(data) // sector_size
                try:
                    yield disk.write(lba, data)
                except MediaError:
                    for address in range(lba, lba + nsectors):
                        at_risk.append((sequence, disk_id, address))
                    continue
                self._report.data_writes_issued += 1
                for address in range(lba, lba + nsectors):
                    previous = replayed.get((disk_id, address), -1)
                    if sequence > previous:
                        replayed[(disk_id, address)] = sequence
            self._report.sectors_replayed += header.batch_size
        dropped = {
            (disk_id, address)
            for sequence, disk_id, address in at_risk
            if replayed.get((disk_id, address), -1) < sequence
        }
        self._report.dropped_sectors.extend(sorted(dropped))


def _coalesce(
    header: RecordHeader, restored: Sequence[bytes],
) -> List[Tuple[int, int, bytes]]:
    """Merge adjacent entries with contiguous data-disk targets."""
    groups: List[Tuple[int, int, bytes]] = []
    current_disk: Optional[int] = None
    current_lba = 0
    current_data = b""
    for entry, data in zip(header.entries, restored):
        disk_id = entry.data_major
        if (current_disk == disk_id
                and entry.data_lba == current_lba + len(current_data) // len(data)):
            current_data += data
        else:
            if current_disk is not None:
                groups.append((current_disk, current_lba, current_data))
            current_disk, current_lba, current_data = disk_id, entry.data_lba, bytes(data)
    if current_disk is not None:
        groups.append((current_disk, current_lba, current_data))
    return groups
