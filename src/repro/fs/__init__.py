"""A mini ext2-flavoured file system over the block-device contract."""

from repro.fs.filesystem import FileHandle, FileSystem
from repro.fs.structures import (
    BLOCK_BYTES, BLOCK_SECTORS, FsError, Inode, Superblock)

__all__ = [
    "BLOCK_BYTES",
    "BLOCK_SECTORS",
    "FileHandle",
    "FileSystem",
    "FsError",
    "Inode",
    "Superblock",
]
