"""On-disk structures of the mini file system.

A deliberately ext2-flavoured layout on a block device, with real
serialized bytes so a crashed image can be remounted and checked:

    block 0            superblock
    block 1            block-allocation bitmap
    block 2            inode table (fixed number of inodes)
    blocks 3..N        data blocks (file contents + directory entries)

Blocks are 4 KiB (8 sectors).  Inodes hold 12 direct block pointers
and one single-indirect pointer, giving a max file size of
(12 + 1024) blocks ≈ 4.1 MB — plenty for the workloads the benchmarks
drive.  The root directory is inode 0; it is the only directory (a
flat namespace, like the paper's benchmark file sets).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ReproError


class FsError(ReproError):
    """File-system level failure (bad image, no space, missing file)."""


#: Bytes per file-system block.
BLOCK_BYTES = 4096
#: Sectors per block (512-byte sectors).
BLOCK_SECTORS = BLOCK_BYTES // 512
#: Direct block pointers per inode.
DIRECT_POINTERS = 12
#: Block pointers in an indirect block.
INDIRECT_POINTERS = BLOCK_BYTES // 4
#: Sentinel for "no block".
NO_BLOCK = 0xFFFF_FFFF

_SUPERBLOCK = struct.Struct("<8sIIIII")
_SUPER_MAGIC = b"MINIFSv1"

# mode, size, mtime(ms), indirect, then 12 direct pointers
_INODE = struct.Struct("<IIQI" + "I" * DIRECT_POINTERS)
INODE_BYTES = _INODE.size
INODES_PER_BLOCK = BLOCK_BYTES // INODE_BYTES

#: inode number, name length, then the name (fixed 56-byte slot).
_DIRENT = struct.Struct("<IH56s")
DIRENT_BYTES = _DIRENT.size
MAX_NAME_BYTES = 56

MODE_FREE = 0
MODE_FILE = 1
MODE_DIR = 2


@dataclass
class Superblock:
    """Root metadata of a file-system image."""

    total_blocks: int
    inode_blocks: int
    data_start: int
    inode_count: int
    clean: int = 1

    def encode(self) -> bytes:
        packed = _SUPERBLOCK.pack(
            _SUPER_MAGIC, self.total_blocks, self.inode_blocks,
            self.data_start, self.inode_count, self.clean)
        return packed + bytes(BLOCK_BYTES - len(packed))

    @classmethod
    def decode(cls, raw: bytes) -> "Superblock":
        if len(raw) < _SUPERBLOCK.size:
            raise FsError("superblock too short")
        magic, total, inode_blocks, data_start, inode_count, clean = \
            _SUPERBLOCK.unpack_from(raw)
        if magic != _SUPER_MAGIC:
            raise FsError(f"not a minifs image (magic {magic!r})")
        return cls(total_blocks=total, inode_blocks=inode_blocks,
                   data_start=data_start, inode_count=inode_count,
                   clean=clean)


@dataclass
class Inode:
    """An in-memory inode; serializes to a fixed-size table slot."""

    mode: int = MODE_FREE
    size: int = 0
    mtime_ms: int = 0
    indirect: int = NO_BLOCK
    direct: List[int] = field(
        default_factory=lambda: [NO_BLOCK] * DIRECT_POINTERS)

    def encode(self) -> bytes:
        return _INODE.pack(self.mode, self.size, self.mtime_ms,
                           self.indirect, *self.direct)

    @classmethod
    def decode(cls, raw: bytes) -> "Inode":
        fields = _INODE.unpack_from(raw)
        mode, size, mtime, indirect = fields[:4]
        return cls(mode=mode, size=size, mtime_ms=mtime,
                   indirect=indirect, direct=list(fields[4:]))

    @property
    def is_free(self) -> bool:
        return self.mode == MODE_FREE

    def blocks_for_size(self) -> int:
        """Data blocks a file of this size occupies."""
        return (self.size + BLOCK_BYTES - 1) // BLOCK_BYTES


def encode_dirent(inode_number: int, name: str) -> bytes:
    """Serialize one directory entry."""
    raw_name = name.encode("utf-8")
    if not raw_name or len(raw_name) > MAX_NAME_BYTES:
        raise FsError(f"bad file name {name!r}")
    return _DIRENT.pack(inode_number, len(raw_name),
                        raw_name.ljust(MAX_NAME_BYTES, b"\x00"))


def decode_dirents(raw: bytes) -> List[Tuple[int, str]]:
    """Parse a directory block into (inode, name) pairs."""
    entries = []
    for offset in range(0, len(raw) - DIRENT_BYTES + 1, DIRENT_BYTES):
        inode_number, name_length, name_raw = _DIRENT.unpack_from(
            raw, offset)
        if name_length == 0 or name_length > MAX_NAME_BYTES:
            continue
        entries.append((inode_number,
                        name_raw[:name_length].decode("utf-8",
                                                      "replace")))
    return entries


class Bitmap:
    """A block-allocation bitmap backed by one 4 KiB block."""

    def __init__(self, raw: Optional[bytes] = None) -> None:
        self._bits = bytearray(raw) if raw is not None \
            else bytearray(BLOCK_BYTES)
        if len(self._bits) != BLOCK_BYTES:
            raise FsError("bitmap block must be exactly one block")

    @property
    def capacity(self) -> int:
        return BLOCK_BYTES * 8

    def is_set(self, index: int) -> bool:
        return bool(self._bits[index // 8] & (1 << (index % 8)))

    def set(self, index: int) -> None:
        self._bits[index // 8] |= 1 << (index % 8)

    def clear(self, index: int) -> None:
        self._bits[index // 8] &= ~(1 << (index % 8))

    def find_free(self, low: int, high: int) -> Optional[int]:
        """First clear bit in [low, high), or None."""
        for index in range(low, high):
            if not self.is_set(index):
                return index
        return None

    def count_set(self, low: int, high: int) -> int:
        return sum(1 for index in range(low, high) if self.is_set(index))

    def encode(self) -> bytes:
        return bytes(self._bits)
