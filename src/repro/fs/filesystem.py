"""The mini file system over a block device.

The stack the paper's Figure 2 shows — "Linux file system interacts
directly with the Trail driver using a low-level access interface" —
realized small: a flat-namespace, ext2-flavoured file system whose
every structure lives as real bytes on the device.  Running it over a
:class:`~repro.core.driver.TrailDriver` makes ``fsync`` cost a log
write; over the standard driver it costs seek + rotation per block —
which is the whole paper, observable through a file API.

Durability contract: ``write`` with ``sync=True`` (O_SYNC) or an
explicit ``fsync`` forces the file's data blocks, its inode, the
bitmap, and any new directory entry before returning.  Async writes
sit in the file system's dirty cache until ``fsync``/``sync_all``.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.blockdev import BlockDevice
from repro.fs.structures import (
    BLOCK_BYTES, BLOCK_SECTORS, Bitmap, DIRECT_POINTERS, DIRENT_BYTES,
    FsError, INDIRECT_POINTERS, INODE_BYTES, INODES_PER_BLOCK, Inode,
    MODE_DIR, MODE_FILE, NO_BLOCK, Superblock, decode_dirents,
    encode_dirent)
from repro.sim import Event, Simulation

_SUPER_BLOCK = 0
_BITMAP_BLOCK = 1
_INODE_TABLE_BLOCK = 2
_ROOT_INODE = 0


class FileHandle:
    """An open file: a thin token holding the inode number."""

    def __init__(self, fs: "FileSystem", inode_number: int,
                 name: str) -> None:
        self.fs = fs
        self.inode_number = inode_number
        self.name = name

    @property
    def size(self) -> int:
        return self.fs._inodes[self.inode_number].size


class FileSystem:
    """A mountable file system on one data disk of a block device."""

    def __init__(self, sim: Simulation, device: BlockDevice,
                 disk_id: int = 0, start_lba: int = 0) -> None:
        self.sim = sim
        self.device = device
        self.disk_id = disk_id
        self.start_lba = start_lba
        self.superblock: Optional[Superblock] = None
        self._bitmap: Optional[Bitmap] = None
        self._inodes: List[Inode] = []
        self._root: Dict[str, int] = {}
        #: Block cache of dirty data not yet on the device.
        self._dirty_blocks: Dict[int, bytes] = {}
        self._dirty_meta: Set[str] = set()
        self._mounted = False

    # ------------------------------------------------------------------
    # Formatting and mounting

    @classmethod
    def mkfs(cls, sim: Simulation, device: BlockDevice,
             total_blocks: int, disk_id: int = 0,
             start_lba: int = 0) -> Generator[Event, Any, "FileSystem"]:
        """Create an empty file system; run as a process.

        Returns a mounted :class:`FileSystem`.
        """
        if total_blocks < 8:
            raise FsError("need at least 8 blocks")
        inode_blocks = 1
        superblock = Superblock(
            total_blocks=total_blocks, inode_blocks=inode_blocks,
            data_start=_INODE_TABLE_BLOCK + inode_blocks,
            inode_count=INODES_PER_BLOCK, clean=1)
        fs = cls(sim, device, disk_id=disk_id, start_lba=start_lba)
        fs.superblock = superblock
        fs._bitmap = Bitmap()
        for block in range(superblock.data_start):
            fs._bitmap.set(block)
        fs._inodes = [Inode() for _ in range(superblock.inode_count)]
        fs._inodes[_ROOT_INODE] = Inode(mode=MODE_DIR, size=0)
        fs._root = {}
        fs._mounted = True
        yield from fs._write_block(_SUPER_BLOCK, superblock.encode())
        yield from fs._flush_metadata()
        return fs

    def mount(self) -> Generator[Event, Any, "FileSystem"]:
        """Read and validate the on-device image; run as a process."""
        if self._mounted:
            raise FsError("already mounted")
        raw = yield from self._read_block(_SUPER_BLOCK)
        self.superblock = Superblock.decode(raw)
        raw = yield from self._read_block(_BITMAP_BLOCK)
        self._bitmap = Bitmap(raw)
        raw = yield from self._read_block(_INODE_TABLE_BLOCK)
        self._inodes = [
            Inode.decode(raw[index * INODE_BYTES:
                             (index + 1) * INODE_BYTES])
            for index in range(self.superblock.inode_count)
        ]
        self._mounted = True
        yield from self._load_root()
        return self

    def _load_root(self) -> Generator[Event, Any, None]:
        self._root = {}
        root = self._inodes[_ROOT_INODE]
        if root.mode != MODE_DIR:
            raise FsError("root inode is not a directory")
        data = yield from self._read_file_bytes(_ROOT_INODE)
        for inode_number, name in decode_dirents(data):
            self._root[name] = inode_number

    # ------------------------------------------------------------------
    # Public file API (all generators: drive via sim processes)

    def create(self, name: str) -> Generator[Event, Any, "FileHandle"]:
        """Create an empty file; metadata is forced synchronously."""
        self._check_mounted()
        if name in self._root:
            raise FsError(f"file exists: {name!r}")
        inode_number = self._find_free_inode()
        self._inodes[inode_number] = Inode(mode=MODE_FILE, size=0,
                                           mtime_ms=int(self.sim.now))
        self._root[name] = inode_number
        yield from self._append_root_entry(inode_number, name)
        yield from self._flush_metadata()
        return FileHandle(self, inode_number, name)

    def open(self, name: str) -> FileHandle:
        """Open an existing file (no I/O: the namespace is cached)."""
        self._check_mounted()
        inode_number = self._root.get(name)
        if inode_number is None:
            raise FsError(f"no such file: {name!r}")
        return FileHandle(self, inode_number, name)

    def listdir(self) -> List[str]:
        """Names in the root directory."""
        self._check_mounted()
        return sorted(self._root)

    def write(self, handle: FileHandle, offset: int, data: bytes,
              sync: bool = False) -> Generator[Event, Any, int]:
        """Write ``data`` at ``offset``; ``sync=True`` is O_SYNC."""
        self._check_mounted()
        if offset < 0 or not data:
            raise FsError("bad write range")
        inode = self._inodes[handle.inode_number]
        end = offset + len(data)
        touched: List[int] = []
        position = offset
        consumed = 0
        while position < end:
            block_index = position // BLOCK_BYTES
            within = position % BLOCK_BYTES
            take = min(BLOCK_BYTES - within, end - position)
            block = yield from self._block_of(handle.inode_number,
                                              block_index,
                                              allocate=True)
            current = yield from self._read_data_block(block)
            patched = (current[:within] + data[consumed:consumed + take]
                       + current[within + take:])
            self._dirty_blocks[block] = patched
            touched.append(block)
            position += take
            consumed += take
        if end > inode.size:
            inode.size = end
        inode.mtime_ms = int(self.sim.now)
        self._dirty_meta.add("inodes")
        if sync:
            yield from self.fsync(handle)
        return len(data)

    def read(self, handle: FileHandle, offset: int,
             length: int) -> Generator[Event, Any, bytes]:
        """Read up to ``length`` bytes from ``offset``."""
        self._check_mounted()
        inode = self._inodes[handle.inode_number]
        if offset >= inode.size:
            return b""
        end = min(offset + length, inode.size)
        out = bytearray()
        position = offset
        while position < end:
            block_index = position // BLOCK_BYTES
            within = position % BLOCK_BYTES
            take = min(BLOCK_BYTES - within, end - position)
            block = yield from self._block_of(handle.inode_number,
                                              block_index,
                                              allocate=False)
            if block == NO_BLOCK:
                out += bytes(take)  # hole
            else:
                raw = yield from self._read_data_block(block)
                out += raw[within:within + take]
            position += take
        return bytes(out)

    def fsync(self, handle: FileHandle) -> Generator[Event, Any, None]:
        """Force the file's dirty data and all metadata."""
        self._check_mounted()
        blocks = yield from self._file_blocks(handle.inode_number)
        for block in blocks:
            if block in self._dirty_blocks:
                yield from self._write_block(
                    block, self._dirty_blocks.pop(block))
        yield from self._flush_metadata()

    def sync_all(self) -> Generator[Event, Any, None]:
        """Force every dirty block and all metadata (like sync(2))."""
        self._check_mounted()
        for block in sorted(self._dirty_blocks):
            yield from self._write_block(block,
                                         self._dirty_blocks.pop(block))
        yield from self._flush_metadata()

    def unlink(self, name: str) -> Generator[Event, Any, None]:
        """Remove a file, freeing its inode and blocks."""
        self._check_mounted()
        inode_number = self._root.pop(name, None)
        if inode_number is None:
            raise FsError(f"no such file: {name!r}")
        blocks = yield from self._file_blocks(inode_number)
        inode = self._inodes[inode_number]
        for block in blocks:
            if block != NO_BLOCK:
                self._bitmap.clear(block)
                self._dirty_blocks.pop(block, None)
        if inode.indirect != NO_BLOCK:
            self._bitmap.clear(inode.indirect)
        self._inodes[inode_number] = Inode()
        self._dirty_meta.update(("inodes", "bitmap"))
        yield from self._rewrite_root_directory()
        yield from self._flush_metadata()

    def stat(self, name: str) -> Tuple[int, int]:
        """(size, mtime_ms) of a file."""
        inode = self._inodes[self._root[name]] \
            if name in self._root else None
        if inode is None:
            raise FsError(f"no such file: {name!r}")
        return inode.size, inode.mtime_ms

    # ------------------------------------------------------------------
    # Consistency check (fsck-lite)

    def check(self) -> List[str]:
        """Verify allocation invariants; returns a list of problems."""
        problems: List[str] = []
        seen: Dict[int, int] = {}
        for number, inode in enumerate(self._inodes):
            if inode.is_free:
                continue
            pointers = [p for p in inode.direct if p != NO_BLOCK]
            if inode.indirect != NO_BLOCK:
                pointers.append(inode.indirect)
            for block in pointers:
                if block >= self.superblock.total_blocks:
                    problems.append(
                        f"inode {number}: block {block} out of range")
                elif not self._bitmap.is_set(block):
                    problems.append(
                        f"inode {number}: block {block} not allocated")
                if block in seen:
                    problems.append(
                        f"block {block} shared by inodes "
                        f"{seen[block]} and {number}")
                seen[block] = number
        for name, inode_number in self._root.items():
            if self._inodes[inode_number].is_free:
                problems.append(
                    f"dirent {name!r} points at free inode "
                    f"{inode_number}")
        return problems

    # ------------------------------------------------------------------
    # Block plumbing

    def _lba_of_block(self, block: int) -> int:
        return self.start_lba + block * BLOCK_SECTORS

    def _read_block(self, block: int) -> Generator[Event, Any, bytes]:
        data: bytes = yield self.device.read(self._lba_of_block(block),
                                      BLOCK_SECTORS,
                                      disk_id=self.disk_id)
        return data

    def _read_data_block(self, block: int) -> Generator[Event, Any, bytes]:
        cached = self._dirty_blocks.get(block)
        if cached is not None:
            return cached
        return (yield from self._read_block(block))

    def _write_block(self, block: int, data: bytes) -> Generator[Event, Any, None]:
        if len(data) != BLOCK_BYTES:
            raise FsError("block writes must be exactly one block")
        yield self.device.write(self._lba_of_block(block), data,
                                disk_id=self.disk_id)

    def _flush_metadata(self) -> Generator[Event, Any, None]:
        yield from self._write_block(_BITMAP_BLOCK,
                                     self._bitmap.encode())
        table = b"".join(inode.encode() for inode in self._inodes)
        table += bytes(BLOCK_BYTES - len(table))
        yield from self._write_block(_INODE_TABLE_BLOCK, table)
        self._dirty_meta.clear()

    def _allocate_block(self) -> int:
        block = self._bitmap.find_free(self.superblock.data_start,
                                       self.superblock.total_blocks)
        if block is None:
            raise FsError("file system full")
        self._bitmap.set(block)
        self._dirty_meta.add("bitmap")
        return block

    def _find_free_inode(self) -> int:
        for number, inode in enumerate(self._inodes):
            if inode.is_free and number != _ROOT_INODE:
                return number
        raise FsError("out of inodes")

    def _block_of(self, inode_number: int, block_index: int,
                  allocate: bool) -> Generator[Event, Any, int]:
        """Physical block of a file's ``block_index``-th block."""
        inode = self._inodes[inode_number]
        if block_index < DIRECT_POINTERS:
            block = inode.direct[block_index]
            if block == NO_BLOCK and allocate:
                block = self._allocate_block()
                inode.direct[block_index] = block
                self._dirty_meta.add("inodes")
            return block
        indirect_index = block_index - DIRECT_POINTERS
        if indirect_index >= INDIRECT_POINTERS:
            raise FsError("file too large")
        if inode.indirect == NO_BLOCK:
            if not allocate:
                return NO_BLOCK
            inode.indirect = self._allocate_block()
            self._dirty_blocks[inode.indirect] = \
                NO_BLOCK.to_bytes(4, "little") * INDIRECT_POINTERS
            self._dirty_meta.add("inodes")
        table = yield from self._read_data_block(inode.indirect)
        block = int.from_bytes(
            table[indirect_index * 4:(indirect_index + 1) * 4],
            "little")
        if block == NO_BLOCK and allocate:
            block = self._allocate_block()
            patched = (table[:indirect_index * 4]
                       + block.to_bytes(4, "little")
                       + table[(indirect_index + 1) * 4:])
            self._dirty_blocks[inode.indirect] = patched
        return block

    def _file_blocks(self, inode_number: int) -> Generator[Event, Any, List[int]]:
        """All allocated physical blocks of a file, plus its indirect."""
        inode = self._inodes[inode_number]
        blocks = [p for p in inode.direct if p != NO_BLOCK]
        if inode.indirect != NO_BLOCK:
            blocks.append(inode.indirect)
            table = yield from self._read_data_block(inode.indirect)
            for index in range(INDIRECT_POINTERS):
                pointer = int.from_bytes(
                    table[index * 4:(index + 1) * 4], "little")
                if pointer != NO_BLOCK:
                    blocks.append(pointer)
        return blocks

    # ------------------------------------------------------------------
    # Root directory maintenance

    def _read_file_bytes(self, inode_number: int) -> Generator[Event, Any, bytes]:
        inode = self._inodes[inode_number]
        out = bytearray()
        for block_index in range(inode.blocks_for_size()):
            block = yield from self._block_of(inode_number, block_index,
                                              allocate=False)
            if block == NO_BLOCK:
                out += bytes(BLOCK_BYTES)
            else:
                out += yield from self._read_data_block(block)
        return bytes(out[:inode.size])

    def _append_root_entry(self, inode_number: int,
                           name: str) -> Generator[Event, Any, None]:
        root = self._inodes[_ROOT_INODE]
        entry = encode_dirent(inode_number, name)
        offset = root.size
        block_index = offset // BLOCK_BYTES
        within = offset % BLOCK_BYTES
        block = yield from self._block_of(_ROOT_INODE, block_index,
                                          allocate=True)
        current = yield from self._read_data_block(block)
        patched = (current[:within] + entry
                   + current[within + DIRENT_BYTES:])
        root.size = offset + DIRENT_BYTES
        self._dirty_meta.add("inodes")
        yield from self._write_block(block, patched)

    def _rewrite_root_directory(self) -> Generator[Event, Any, None]:
        root = self._inodes[_ROOT_INODE]
        entries = b"".join(encode_dirent(number, name)
                           for name, number in sorted(self._root.items()))
        root.size = len(entries)
        position = 0
        block_index = 0
        while position < len(entries) or block_index == 0:
            chunk = entries[position:position + BLOCK_BYTES]
            chunk += bytes(BLOCK_BYTES - len(chunk))
            block = yield from self._block_of(_ROOT_INODE, block_index,
                                              allocate=True)
            yield from self._write_block(block, chunk)
            position += BLOCK_BYTES
            block_index += 1

    def _check_mounted(self) -> None:
        if not self._mounted:
            raise FsError("file system is not mounted")
