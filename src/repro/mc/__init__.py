"""Bounded model-checking scenarios for the Trail stack.

``repro.sim.explore`` is the engine — schedule enumeration, replay,
static pruning; this package is the harness that points it at the
real stack: three deterministic end-to-end scenarios (crash +
recovery, write-back under media faults, two interleaved instances),
the digests each must hold invariant across every legal cooperative
schedule, and seeded mutation fixtures that reintroduce historical
concurrency bugs so the checker's teeth stay verifiable.

Run via ``repro mc`` (or ``make mc``)::

    PYTHONPATH=src:. python -m repro mc --budget 200
"""

from repro.mc.mutation import MUTATIONS, tail_chain_tear
from repro.mc.scenarios import (
    SCENARIOS, Scenario, default_oracle, explore_scenario)

__all__ = [
    "MUTATIONS",
    "SCENARIOS",
    "Scenario",
    "default_oracle",
    "explore_scenario",
    "tail_chain_tear",
]
