"""Seeded mutations: reintroduced bugs the checker must catch.

A model checker that never fails is indistinguishable from one that
never looks.  Each mutation here surgically reintroduces a historical
concurrency bug as a reversible monkeypatch; ``repro mc --mutate``
runs a scenario under the mutation and *expects* the explorer to
flag it, failing the build if the bug sails through.

``tail-chain-tear`` recreates the PR 4 era bug the ``tail-chain``
atomic group was annotated for: the driver published a record into
``_live_records`` in a different atomic segment than the
``_last_record_lba`` chain link, so a context switch between the two
saw a live tail whose chain didn't include it — recovery scanning
that snapshot would drop an acknowledged write.  The mutated
``_emit_record`` publishes the record *before* the platter write
(whose yield is a context switch), which the sanitizer's tail-chain
transition check catches on every schedule.
"""

from __future__ import annotations

from contextlib import contextmanager
from types import MappingProxyType
from typing import Any, Callable, Deque, Generator, Iterator, List, Mapping, Tuple

from repro.core.buffer import LiveRecord
from repro.core.driver import TrailDriver
from repro.units import LogLba


@contextmanager
def tail_chain_tear() -> Iterator[None]:
    """Publish the live record one atomic segment too early."""
    original = TrailDriver._emit_record

    def torn(self: TrailDriver, header_lba: int, track: int,
             spans: List[Any], total: int,
             pending: Deque[Any]) -> Generator[Any, Any, Any]:
        record = LiveRecord(sequence_id=self._next_sequence,
                            track=track,
                            header_lba=LogLba(header_lba),
                            nsectors=total)
        self._live_records[record.sequence_id] = record
        result = yield from original(self, header_lba, track, spans,
                                     total, pending)
        return result

    TrailDriver._emit_record = torn  # type: ignore[method-assign]
    try:
        yield
    finally:
        TrailDriver._emit_record = original  # type: ignore[method-assign]


#: Registry for ``repro mc --mutate``.
# trailiso: shared_immutable -- mutation registry frozen at import
MUTATIONS: Mapping[str, Callable[[], "Any"]] = MappingProxyType({
    "tail-chain-tear": tail_chain_tear,
})


__all__ = ["MUTATIONS", "tail_chain_tear"]
