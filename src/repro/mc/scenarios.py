"""The three model-checked scenarios and their invariant digests.

Each scenario builds a *fresh* world under the explorer's
:class:`~repro.sim.explore.ScheduleController`, runs a deterministic
workload to completion with a fresh ``TRAILSAN`` sanitizer installed,
and returns the digests that must be byte-identical on every explored
schedule.  What a scenario digests — and which choice-point kinds it
lets the explorer enumerate — is chosen so the digest is exactly the
set of outcomes the stack *guarantees* independent of scheduling:

``crash-recovery`` / ``writeback-faults`` (``ready`` ties)
    Concurrent LBA-disjoint writers have one correct final **data
    disk** image no matter how same-time dispatches interleave.  The
    log disk's byte layout legitimately varies with dispatch order
    (batching and placement are timing-dependent), so only the data
    image is digested; the log's correctness is asserted indirectly —
    recovery must reproduce the unique data image from whatever log
    the schedule produced, and the sanitizer's tail-chain /
    pinned-accounting groups must hold at every context switch.

``two-instance`` (``instance`` interleaving)
    Cross-instance isolation (PR 8's ``TrailInstance`` contract) means
    *everything* per-instance is invariant: full disk fingerprints
    (log bytes included) and per-instance event traces must match the
    canonical round-robin interleave for every enumerated global
    order.  Intra-sim ``ready`` ties are *not* explored here — they
    would legitimately change per-instance traces, which is the other
    two scenarios' job to vet.

Same-timestamp ready ties are the explored nondeterminism inside one
simulation; delayed (heap) events pop FIFO per timestamp, the same
scope the PR 4 perturbation harness exercises.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from types import MappingProxyType
from typing import (
    Any, Dict, Generator, List, Mapping, Optional, Sequence, Tuple)

from repro.core.config import TrailConfig
from repro.core.driver import TrailDriver
from repro.core.instance import TrailInstance
from repro.disk.drive import DiskDrive
from repro.disk.presets import tiny_test_disk
from repro.faults.plan import FaultPlan
from repro.sim.events import Event
from repro.sim.explore import (
    KIND_INSTANCE, KIND_READY, ExplorationReport, Explorer,
    IndependenceOracle, RunResult, ScenarioRunner, ScheduleController,
    controlled_simulation, drive, drive_interleaved)
from repro.sim.kernel import Simulation
from repro.sim.sanitizer import TrailSanitizer

SECTOR = 512
#: Writers per instance; spaced so extents never overlap (disjoint
#: LBA ranges -> a unique correct final data image).
WRITERS = 3
ROUNDS = 2
STRIDE = 64


def _payload(writer: int, round_no: int, nsectors: int) -> bytes:
    seed = (writer * 131 + round_no * 17) % 251 + 1
    return bytes((seed + i) % 256 for i in range(nsectors * SECTOR))


def _writer(driver: TrailDriver, writer: int,
            ) -> Generator[Event, Any, None]:
    base = writer * STRIDE * ROUNDS
    for round_no in range(ROUNDS):
        nsectors = 1 + (writer + round_no) % 2
        yield driver.write(
            base + round_no * STRIDE,
            _payload(writer, round_no, nsectors))


def _build_instance(controller: ScheduleController,
                    ) -> TrailInstance[DiskDrive]:
    """One small, fast Trail stack under the controller's schedule.

    The sanitizer is installed unconditionally — every explored
    schedule is a ``TRAILSAN=1`` run regardless of the environment —
    and must be in place before the driver registers its groups.
    """
    sim = controlled_simulation(controller, sanitizer=TrailSanitizer())
    log = tiny_test_disk(cylinders=30).make_drive(sim, "log")
    data = tiny_test_disk(cylinders=80, heads=4, sectors_per_track=32,
                          ).make_drive(sim, "data0")
    return TrailInstance(
        sim, log, {0: data},
        TrailConfig(idle_reposition_interval_ms=0), mount=False)


def _data_digest(instance: TrailInstance[DiskDrive]) -> str:
    """Digest of the data disks' written sectors (log excluded)."""
    digest = hashlib.sha256()
    for disk_id in sorted(instance.data_drives):
        target = instance.data_drives[disk_id]
        digest.update(target.name.encode())
        for lba, nsectors in target.store.written_extents():
            digest.update(lba.to_bytes(8, "big"))
            digest.update(nsectors.to_bytes(4, "big"))
            digest.update(target.store.read(lba, nsectors))
    return digest.hexdigest()


def _run_workload(instance: TrailInstance[DiskDrive]) -> None:
    sim = instance.sim
    driver = instance.driver

    def workload() -> Generator[Event, Any, None]:
        writers = [sim.process(_writer(driver, w), name=f"w{w}")
                   for w in range(WRITERS)]
        yield sim.all_of(writers)

    drive(sim, sim.process(workload(), name="workload"))


def _scenario_crash_recovery(
        controller: ScheduleController) -> RunResult:
    """Ack writes, cut power, recover, flush: one correct data image.

    The crash lands after every write is acknowledged — Trail's §4.1
    guarantee then pins the outcome: whatever mix of log placement and
    write-back progress this schedule reached, remount recovery plus a
    full flush must rebuild the same data-disk bytes.
    """
    instance = _build_instance(controller)
    sim = instance.sim
    drive(sim, sim.process(instance.driver.mount(), name="mount"))
    _run_workload(instance)
    instance.crash()

    instance.log_drive.power_on()
    for target in instance.data_drives.values():
        target.power_on()
    recovered = TrailDriver(sim, instance.log_drive,
                            instance.data_drives,
                            instance.driver.config)
    remount = sim.process(recovered.mount(), name="remount")
    drive(sim, remount)
    report = remount.value

    def finish() -> Generator[Event, Any, None]:
        yield from recovered.flush()
        yield from recovered.clean_shutdown()

    drive(sim, sim.process(finish(), name="finish"))
    return RunResult(
        digests=(_data_digest(instance),),
        note="recovery ran" if report is not None else "no recovery")


def _scenario_writeback_faults(
        controller: ScheduleController) -> RunResult:
    """Write-back against a flaky data disk still converges.

    Transient write faults and latency spikes on the data drive are
    absorbed by the drive's retry/remap loop; the retry budget is
    sized so exhaustion is unreachable, leaving the final data image
    unique across schedules even though *which* command each seeded
    fault lands on depends on dispatch order.
    """
    instance = _build_instance(controller)
    sim = instance.sim
    instance.data_drives[0].attach_faults(FaultPlan(
        seed=5,
        transient_write_error_prob=0.15,
        latency_spike_prob=0.1,
        latency_spike_ms=2.0,
        retry_limit=10,
    ))
    drive(sim, sim.process(instance.driver.mount(), name="mount"))
    _run_workload(instance)

    def finish() -> Generator[Event, Any, None]:
        yield from instance.driver.flush()
        yield from instance.driver.clean_shutdown()

    drive(sim, sim.process(finish(), name="finish"))
    return RunResult(digests=(_data_digest(instance),))


def _scenario_two_instance(
        controller: ScheduleController) -> RunResult:
    """Two full stacks, every bounded interleaving, zero cross-talk.

    Each instance runs its whole lifecycle (mount, disjoint writers,
    flush, clean shutdown) in its own simulation; the controller picks
    which instance steps at every global turn.  Full per-instance
    fingerprints (log bytes included) and event-trace digests must
    match the canonical round-robin run exactly.
    """
    runs: List[Tuple[Simulation, Event]] = []
    instances: List[TrailInstance[DiskDrive]] = []
    for tag in ("a", "b"):
        instance = _build_instance(controller)
        sim = instance.sim
        driver = instance.driver

        def lifecycle(sim: Simulation = sim,
                      driver: TrailDriver = driver,
                      ) -> Generator[Event, Any, None]:
            yield from driver.mount()
            writers = [sim.process(_writer(driver, w), name=f"w{w}")
                       for w in range(WRITERS)]
            yield sim.all_of(writers)
            yield from driver.flush()
            yield from driver.clean_shutdown()

        runs.append((sim, sim.process(lifecycle(), name=f"life-{tag}")))
        instances.append(instance)
    drive_interleaved(controller, runs)
    digests: List[str] = []
    for instance in instances:
        digests.append(instance.fingerprint())
        digests.append(instance.trace_digest())
    return RunResult(digests=tuple(digests))


@dataclass(frozen=True)
class Scenario:
    """A model-checked scenario: runner + exploration policy."""

    name: str
    summary: str
    runner: ScenarioRunner
    #: Choice-point kinds whose outcome the digests are invariant
    #: under (the only kinds the explorer may enumerate here).
    explore: Tuple[str, ...]
    #: What each digest position means, for reporting.
    digest_names: Tuple[str, ...]


# trailiso: shared_immutable -- scenario registry frozen at import; per-run state lives in each schedule's fresh instances
SCENARIOS: Mapping[str, Scenario] = MappingProxyType({
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="crash-recovery",
            summary="acked writes survive power cut + remount recovery",
            runner=_scenario_crash_recovery,
            explore=(KIND_READY,),
            digest_names=("data-image",),
        ),
        Scenario(
            name="writeback-faults",
            summary="write-back under transient data-disk faults",
            runner=_scenario_writeback_faults,
            explore=(KIND_READY,),
            digest_names=("data-image",),
        ),
        Scenario(
            name="two-instance",
            summary="two interleaved instances stay bit-isolated",
            runner=_scenario_two_instance,
            explore=(KIND_INSTANCE,),
            digest_names=("fingerprint-a", "trace-a",
                          "fingerprint-b", "trace-b"),
        ),
    )
})


def default_oracle(
    payload: Optional[Mapping[Tuple[str, str, int],
                              Mapping[str, object]]] = None,
) -> Optional[IndependenceOracle]:
    """Oracle from a ``tools/trailmc`` payload (None passes through)."""
    if payload is None:
        return None
    return IndependenceOracle.from_segments(payload)


def explore_scenario(
    scenario: Scenario,
    *,
    oracle: Optional[IndependenceOracle] = None,
    preemption_bound: int = 2,
    budget: int = 200,
    max_dispatches: int = 200_000,
    stop_on_failure: bool = True,
) -> ExplorationReport:
    """Run the bounded exploration for one scenario."""
    explorer = Explorer(
        scenario.runner,
        oracle=oracle,
        preemption_bound=preemption_bound,
        budget=budget,
        max_dispatches=max_dispatches,
        stop_on_failure=stop_on_failure,
        explore=scenario.explore,
    )
    return explorer.run()


__all__ = [
    "SCENARIOS",
    "Scenario",
    "default_oracle",
    "explore_scenario",
]
