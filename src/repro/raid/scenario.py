"""The ``repro raid-rebuild`` experiment: kill a drive under traffic.

A :class:`~repro.core.driver.TrailDriver` fronts a RAID-5 array with a
hot spare.  A seeded open-loop workload (mixed small writes and reads)
runs against the driver; at a planned instant one member drive dies —
scheduled through the same :func:`repro.faults.start_drive_faults`
machinery as every other drive-level fault, so determinism is the
plan's, not the scenario's.  The array detects the death from the
first command that touches it, degrades, and rebuilds the lost member
onto the spare while the foreground traffic keeps flowing.

The experiment reports what the paper's robustness story needs:

* rebuild time (detection → spare fully reconstructed),
* foreground p50/p99 per phase — healthy / degraded / rebuilt —
  (the log disk keeps absorbing small writes at full speed throughout,
  so the interesting number is how little "degraded" differs),
* a full audit: every acknowledged write reads back byte-exact after
  the rebuild, and an offline parity sweep over the final member set
  XORs to zero on every stripe.

Everything is seeded: the same :class:`RaidRebuildConfig` produces a
bit-identical :class:`RaidRebuildResult` (asserted via
:attr:`RaidRebuildResult.fingerprint`).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.core.config import TrailConfig
from repro.core.instance import TrailInstance
from repro.disk.drive import DiskDrive
from repro.disk.presets import tiny_test_disk
from repro.errors import DiskError, ReproError
from repro.faults import FaultPlan, start_drive_faults
from repro.raid.array import Raid5Array, _xor
from repro.raid.rebuild import RebuildConfig
from repro.sim import Event, PhasedLatencyRecorder, Simulation
from repro.units import Ms


@dataclass(frozen=True)
class RaidRebuildConfig:
    """Parameters of one seeded drive-kill-under-traffic run."""

    seed: int = 0
    #: RAID width (members including parity); >= 3.
    members: int = 4
    stripe_unit_sectors: int = 8
    #: Which member dies.
    kill_member: int = 1
    #: When it dies (simulated ms from workload start).
    kill_at_ms: float = 150.0
    #: Open-loop workload duration.
    duration_ms: float = 1500.0
    #: Mean interarrival of foreground operations (the traffic knob).
    interarrival_ms: float = 2.0
    #: Fraction of foreground operations that are reads.
    read_fraction: float = 0.25
    #: Foreground write granularity: every write covers exactly one
    #: aligned page of this many sectors, like a buffer cache feeding
    #: a block device.  (The BlockDevice write-ordering contract only
    #: orders writes to *identical* extents; a workload issuing
    #: overlapping mixed-size extents would race its own write-backs.)
    page_sectors: int = 4
    #: Rebuild throttle: stripes copied per burst, pause between bursts.
    rebuild_stripes_per_burst: int = 8
    rebuild_pause_ms: float = 2.0
    #: Write-back defer hint advertised while the rebuild runs.
    writeback_defer_ms: float = 2.0
    #: Member-drive size knob (cylinders of the tiny test geometry).
    member_cylinders: int = 40
    #: Log-drive size.  The log must have headroom for the whole burst
    #: of writes the workload issues while write-back is throttled by
    #: the rebuild — a full log would push foreground latency onto the
    #: (deliberately slowed) drain path and measure the wrong thing.
    log_cylinders: int = 120

    def __post_init__(self) -> None:
        if self.members < 3:
            raise DiskError("RAID-5 needs at least 3 members")
        if not 0 <= self.kill_member < self.members:
            raise DiskError(
                f"kill_member {self.kill_member} out of range")
        if self.kill_at_ms < 0 or self.duration_ms <= 0:
            raise DiskError("times must be non-negative")
        if self.interarrival_ms <= 0:
            raise DiskError("interarrival must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise DiskError("read_fraction must be in [0, 1]")
        if self.page_sectors < 1:
            raise DiskError("page_sectors must be >= 1")

    @staticmethod
    def smoke(seed: int = 0) -> "RaidRebuildConfig":
        """A seconds-not-minutes variant for CI."""
        return RaidRebuildConfig(
            seed=seed, kill_at_ms=60.0, duration_ms=400.0,
            interarrival_ms=4.0, member_cylinders=10,
            log_cylinders=40)


@dataclass
class RaidRebuildResult:
    """Everything one run measured, plus its audit verdicts."""

    config: RaidRebuildConfig
    #: Rebuild outcome: "complete", "aborted", or "never-started".
    rebuild_status: str = "never-started"
    #: Detection → spare fully reconstructed, in simulated ms.
    rebuild_ms: float = 0.0
    stripes_rebuilt: int = 0
    stripes_total: int = 0
    #: Foreground operations whose completion event failed.
    foreground_errors: int = 0
    writes_acked: int = 0
    reads_served: int = 0
    #: (phase, samples, p50 ms, p99 ms, mean ms) per experiment phase.
    phase_rows: List[Tuple[str, int, float, float, float]] = field(
        default_factory=list)
    #: Post-rebuild audit: sectors read back vs the workload's model.
    verified_sectors: int = 0
    mismatched_sectors: int = 0
    #: Offline parity sweep over the final member set.
    parity_clean: bool = False
    #: Sectors the rebuild gave up on (unreadable survivor extents).
    lost_sectors: int = 0
    #: Trail/array interaction counters.
    rebuild_deferrals: int = 0
    degraded_reads: int = 0
    degraded_writes: int = 0
    gate_waits: int = 0
    op_retries: int = 0
    amplification: float = 0.0
    #: Digest of every observable number above plus the raw latency
    #: samples — two runs with the same config must produce the same
    #: fingerprint.
    fingerprint: str = ""
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """The acceptance gate: rebuilt, error-free, byte-exact."""
        return (self.rebuild_status == "complete"
                and self.foreground_errors == 0
                and self.mismatched_sectors == 0
                and self.parity_clean
                and self.lost_sectors == 0)


def run_raid_rebuild(config: RaidRebuildConfig) -> RaidRebuildResult:
    """Run one seeded drive-kill experiment end to end."""
    sim = Simulation()
    spec = tiny_test_disk(cylinders=config.member_cylinders,
                          heads=2, sectors_per_track=16)
    log_drive = tiny_test_disk(
        cylinders=config.log_cylinders).make_drive(sim, "log")
    members = [spec.make_drive(sim, f"member{i}")
               for i in range(config.members)]
    spare = spec.make_drive(sim, "spare")
    array = Raid5Array(
        sim, members, stripe_unit_sectors=config.stripe_unit_sectors,
        spares=[spare],
        rebuild_config=RebuildConfig(
            stripes_per_burst=config.rebuild_stripes_per_burst,
            pause_ms=config.rebuild_pause_ms,
            writeback_defer_ms=config.writeback_defer_ms))
    instance = TrailInstance(
        sim, log_drive, {0: array},
        TrailConfig(idle_reposition_interval_ms=0))
    trail = instance.driver

    result = RaidRebuildResult(config=config,
                               stripes_total=array.stripes_total)
    phases = PhasedLatencyRecorder("healthy")
    model: Dict[int, bytes] = {}
    sector_size = trail.sector_size
    rng = random.Random(config.seed)

    # The drive kill goes through the fault plan so the schedule is the
    # plan's responsibility, exactly like per-sector faults.
    kill_plan = FaultPlan(seed=config.seed,
                          death_at_ms=config.kill_at_ms)
    start_drive_faults(sim, members[config.kill_member], kill_plan)

    def flip_degraded() -> Generator[Event, Any, None]:
        yield sim.timeout(config.kill_at_ms)
        phases.set_phase("degraded")

    sim.process(flip_degraded(), name="phase-degraded")

    def watch_rebuild() -> Generator[Event, Any, None]:
        # Detection is lazy (the array learns of the death from the
        # next command that touches the member), so poll for the engine
        # to appear, then sleep on its completion event.
        while array.rebuild is None:
            if array.array_failed:
                return
            yield sim.timeout(1.0)
        engine = array.rebuild
        yield engine.done
        if engine.status == "complete":
            phases.set_phase("rebuilt")

    sim.process(watch_rebuild(), name="phase-rebuilt")

    #: Sectors with an issued-but-unacknowledged write; verifying
    #: reads avoid them, since the device legitimately serves the old
    #: contents until the write is acknowledged.
    inflight: Dict[int, int] = {}

    def complete(event: Event, issued_at: Ms, is_read: bool,
                 lba: int, nsectors: int, want: Optional[bytes],
                 ) -> Generator[Event, Any, None]:
        try:
            value = yield event
        except ReproError:
            result.foreground_errors += 1
            return
        finally:
            if not is_read:
                for offset in range(nsectors):
                    sector = lba + offset
                    inflight[sector] -= 1
                    if not inflight[sector]:
                        del inflight[sector]
        phases.record(sim.now - issued_at)
        if is_read:
            result.reads_served += 1
            # A write to the same sector issued while this read was in
            # flight may legitimately win; accept the value the model
            # held at issue time or holds now.
            got = bytes(value[:sector_size])
            if want is not None and got != want and got != model.get(lba):
                result.mismatched_sectors += 1
        else:
            result.writes_acked += 1

    def workload() -> Generator[Event, Any, None]:
        pages = array.geometry.total_sectors // config.page_sectors
        nsectors = config.page_sectors
        deadline = config.duration_ms
        while sim.now < deadline:
            settled = [sector for sector in sorted(model)
                       if sector not in inflight]
            if settled and rng.random() < config.read_fraction:
                lba = rng.choice(settled)
                want = model[lba]
                event: Event = trail.read(lba, 1)
                sim.process(complete(event, sim.now, True, lba, 1, want),
                            name=f"fg-read@{lba}")
            else:
                lba = rng.randrange(0, pages) * nsectors
                fill = bytes([rng.randrange(256)])
                data = fill * (nsectors * sector_size)
                for offset in range(nsectors):
                    model[lba + offset] = data[:sector_size]
                    inflight[lba + offset] = (
                        inflight.get(lba + offset, 0) + 1)
                event = trail.write(lba, data)
                sim.process(
                    complete(event, sim.now, False, lba, nsectors, None),
                    name=f"fg-write@{lba}")
            yield sim.timeout(rng.expovariate(1.0 / config.interarrival_ms))

    sim.run_until(sim.process(workload(), name="raid-workload"))

    # The kill may have gone undetected if traffic happened to miss the
    # dead member; a full-span read forces detection deterministically.
    if array.failed_drive is None and members[config.kill_member].dead:
        span = min(array.geometry.total_sectors,
                   config.stripe_unit_sectors * (config.members - 1))
        sim.run_until(array.read(0, span))
    engine = array.rebuild
    if engine is not None:
        if engine.active:
            sim.run_until(engine.done)
        result.rebuild_status = engine.status
        result.rebuild_ms = engine.elapsed_ms
        result.stripes_rebuilt = engine.stripes_rebuilt
        result.lost_sectors = len(engine.lost_sectors)
    sim.run_until(sim.process(trail.flush(), name="final-flush"))

    # Audit 1: every modeled sector reads back byte-exact through the
    # driver (buffer hits and disk reads both count).
    def verify() -> Generator[Event, Any, int]:
        mismatches = 0
        for lba in sorted(model):
            data = yield trail.read(lba, 1)
            if bytes(data[:sector_size]) != model[lba]:
                mismatches += 1
        return mismatches
    result.mismatched_sectors += sim.run_until(
        sim.process(verify(), name="verify"))
    result.verified_sectors = len(model)

    # Audit 2: offline parity sweep — with the rebuilt spare swapped
    # into the member set, XOR across each stripe must be zero.
    result.parity_clean = _parity_sweep(array)

    stats = array.stats
    result.rebuild_deferrals = trail.writeback.rebuild_deferrals
    result.degraded_reads = stats.degraded_reads
    result.degraded_writes = stats.degraded_writes
    result.gate_waits = stats.gate_waits
    result.op_retries = stats.op_retries
    result.amplification = stats.amplification
    for phase in phases.phases:
        recorder = phases.recorder(phase)
        result.phase_rows.append((
            phase, recorder.count, recorder.percentile(50.0),
            recorder.percentile(99.0), recorder.mean))
    if array.failed_drive is not None:
        result.notes.append("array still degraded at end of run")
    if result.rebuild_status == "complete":
        result.notes.append(
            f"rebuild copied {result.stripes_rebuilt} stripes in "
            f"{result.rebuild_ms:.1f} ms while foreground I/O flowed")
    result.fingerprint = _fingerprint(result)
    return result


def _parity_sweep(array: Raid5Array) -> bool:
    """Offline check: every stripe's members XOR to zero."""
    unit_bytes = array.stripe_unit * array.sector_size
    zero = bytes(unit_bytes)
    for stripe in range(array.stripes_total):
        lba = stripe * array.stripe_unit
        chunks: List[bytes] = []
        for drive in array.drives:
            chunks.append(drive.store.read(lba, array.stripe_unit))
        if _xor(chunks) != zero:
            return False
    return True


def _fingerprint(result: RaidRebuildResult) -> str:
    """Deterministic digest of every observable number in the result."""
    digest = hashlib.sha256()
    parts: List[object] = [
        result.rebuild_status, round(result.rebuild_ms, 6),
        result.stripes_rebuilt, result.stripes_total,
        result.foreground_errors, result.writes_acked,
        result.reads_served, result.verified_sectors,
        result.mismatched_sectors, result.parity_clean,
        result.lost_sectors, result.rebuild_deferrals,
        result.degraded_reads, result.degraded_writes,
        result.gate_waits, result.op_retries,
        round(result.amplification, 9),
    ]
    for row in result.phase_rows:
        parts.append((row[0], row[1], round(row[2], 6),
                      round(row[3], 6), round(row[4], 6)))
    digest.update(repr(parts).encode())
    return digest.hexdigest()[:16]
