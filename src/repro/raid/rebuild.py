"""Online RAID-5 rebuild: reconstruct a dead member onto a hot spare.

The engine is a background simulation process that walks the array
stripe by stripe: lock the stripe against foreground writers, read the
same stripe unit from every survivor, XOR them into the lost member's
content (data or parity uniformly — XOR over the whole stripe is zero),
write it to the spare, advance the checkpoint, unlock.  Foreground
traffic keeps flowing the whole time:

* **Scheduling** — rebuild commands are issued at
  :data:`~repro.disk.controller.PRIORITY_REBUILD`, below foreground
  reads *and* write-backs, so reconstruction soaks up idle head time
  instead of stealing it (the elevator's ``starvation_ms`` aging knob
  bounds how long a saturated foreground can starve it).  The
  ``stripes_per_burst`` / ``pause_ms`` throttle caps the engine's duty
  cycle independently of queue priorities.
* **Bad sectors** — an unreadable survivor extent degrades to
  per-sector salvage reads; sectors that stay unreadable are recorded
  in :attr:`RebuildEngine.lost_sectors` and reconstruct as zeros (the
  array keeps serving; a real controller would flag these to the
  host).  Unwritable spare targets are relocated to spare sectors and
  retried.
* **Power failure** — the checkpoint pair (resume cursor + progress
  counter) only ever moves in one atomic segment, so a halt mid-stripe
  pauses the engine *at the last completed stripe* and
  :meth:`~repro.raid.array.Raid5Array.power_on` resumes it there;
  re-copying a stripe is idempotent.
* **Second failure** — a dead survivor fails the array loudly (the
  engine aborts); a dead *spare* merely aborts this rebuild and the
  array falls back to degraded service (or the next hot spare).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Tuple

from repro.disk.controller import PRIORITY_REBUILD
from repro.disk.drive import DiskDrive
from repro.errors import (
    DiskError, DiskHaltedError, DriveFailedError, RaidFailedError,
    UnrecoverableSectorError)
from repro.raid.array import (
    Raid5Array, _absorb_failures, _defuse_if_failed, _xor)
from repro.sim import Event, Process
from repro.units import Lba, Ms, Sectors


@dataclass(frozen=True)
class RebuildConfig:
    """Throttle and scheduling knobs for one rebuild run."""

    #: Stripes copied back-to-back before the engine yields the array
    #: to foreground traffic for ``pause_ms``.
    stripes_per_burst: int = 8

    #: Idle time between bursts — the rebuild throttle knob.  0 runs
    #: flat out (fastest rebuild, worst foreground latency).
    pause_ms: Ms = 2.0

    #: Member-disk queue priority for rebuild commands.
    priority: int = PRIORITY_REBUILD

    #: Hint exported through the array to Trail's write-back scheduler:
    #: how long a write-back should park when it sees the array
    #: rebuilding.  0 disables parking.
    writeback_defer_ms: Ms = 0.0

    #: Relocate-and-retry attempts for an unwritable spare target
    #: before its sectors are recorded as lost.
    spare_write_retries: int = 1

    def __post_init__(self) -> None:
        if self.stripes_per_burst < 1:
            raise ValueError("stripes_per_burst must be >= 1")
        if self.pause_ms < 0:
            raise ValueError("pause_ms must be >= 0")
        if self.writeback_defer_ms < 0:
            raise ValueError("writeback_defer_ms must be >= 0")
        if self.spare_write_retries < 0:
            raise ValueError("spare_write_retries must be >= 0")


class RebuildEngine:
    """One online reconstruction of a failed member onto a spare."""

    def __init__(self, array: Raid5Array, spare: DiskDrive,
                 config: Optional[RebuildConfig] = None) -> None:
        if array.failed_drive is None:
            raise DiskError(f"{array.name}: no failed member to rebuild")
        self.array = array
        self.spare = spare
        self.config = config or RebuildConfig()
        self.sim = array.sim
        #: Index of the member being reconstructed.
        self.member_index: int = array.failed_drive
        #: ``pending`` -> ``running`` <-> ``paused`` -> ``complete`` /
        #: ``aborted``.
        self.status = "pending"
        self.stripes_total = array.stripes_total
        # The checkpoint: _next_stripe is the resume cursor (and the
        # watermark below which foreground I/O trusts the spare);
        # stripes_rebuilt is the public progress counter.  They are
        # maintained by different consumers but must always agree, so
        # they move together in one atomic segment — trailsan checks
        # this statically, and the TRAILSAN=1 transition registered
        # below checks every context switch at runtime.
        self._next_stripe = 0  # trailsan: atomic_group(rebuild-progress)
        self.stripes_rebuilt = 0  # trailsan: atomic_group(rebuild-progress)
        #: Survivor reads + spare writes issued (member amplification).
        self.member_reads = 0
        self.member_writes = 0
        #: Per-sector fallback reads after an unreadable extent.
        self.salvage_reads = 0
        #: (drive name, member LBA) pairs whose content could not be
        #: reconstructed (unreadable survivor / unwritable spare).
        self.lost_sectors: List[Tuple[str, int]] = []
        #: Spare-sector remaps performed on the rebuild target.
        self.spare_relocations = 0
        #: Stripe copies abandoned and retried (power loss etc.).
        self.stripe_retries = 0
        self.started_at: Optional[Ms] = None
        self.completed_at: Optional[Ms] = None
        self.abort_reason: Optional[str] = None
        self._paused = False
        self._resume_event: Optional[Event] = None
        self._process: Optional[Process] = None
        #: Fires with the final status string when the engine finishes
        #: (``complete`` or ``aborted``); scenarios wait on this.
        self.done: Event = self.sim.event()
        sanitizer = self.sim.sanitizer
        if sanitizer is not None:
            sanitizer.add_transition("rebuild-progress",
                                     self._san_progress_probe,
                                     self._san_progress_judge)

    # ------------------------------------------------------------------
    # Introspection

    @property
    def next_stripe(self) -> int:
        """First stripe not yet on the spare (the rebuilt watermark)."""
        return self._next_stripe

    @property
    def active(self) -> bool:
        return self.status in ("pending", "running", "paused")

    @property
    def paused(self) -> bool:
        return self.status == "paused"

    @property
    def progress(self) -> float:
        """Fraction of stripes reconstructed, in [0, 1]."""
        if not self.stripes_total:
            return 1.0
        return self.stripes_rebuilt / self.stripes_total

    def covers(self, stripe: int) -> bool:
        """True when foreground I/O may serve ``stripe`` from the spare."""
        # unit: (stripe: scalar)
        return (self.active and stripe < self._next_stripe
                and not self.spare.dead and not self.spare.halted)

    @property
    def elapsed_ms(self) -> Ms:
        """Wall-clock (simulated) time the rebuild has been running."""
        if self.started_at is None:
            return 0.0
        end = (self.completed_at if self.completed_at is not None
               else self.sim.now)
        return end - self.started_at

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self) -> Process:
        """Launch the background copier process."""
        if self.status != "pending":
            raise DiskError(f"rebuild already {self.status}")
        self.status = "running"
        self.started_at = self.sim.now
        self._process = self.sim.process(
            self._run(), name=f"{self.array.name}:rebuild")
        return self._process

    def pause(self, reason: str) -> None:
        """Stop copying after the current stripe; checkpoint persists.

        Used by :meth:`Raid5Array.halt` (power failure) and available
        as a manual throttle.  In-flight member commands of the current
        stripe abort (or finish); the checkpoint stays at the last
        *completed* stripe, so resuming re-copies at most one stripe —
        deterministically, and idempotently.
        """
        if self.status != "running":
            return
        self.status = "paused"
        self._paused = True

    def resume(self) -> None:
        """Continue from the checkpoint after :meth:`pause`."""
        if self.status != "paused":
            return
        self.status = "running"
        self._paused = False
        self._wake()

    def abort(self, reason: str) -> None:
        """Permanently stop this rebuild (spare death, second failure)."""
        if self.status in ("complete", "aborted"):
            return
        self.status = "aborted"
        self.abort_reason = reason
        self.completed_at = self.sim.now
        self._paused = False
        self._wake()
        if not self.done.triggered:
            self.done.succeed("aborted")

    def _wake(self) -> None:
        event = self._resume_event
        self._resume_event = None
        if event is not None and not event.triggered:
            event.succeed(None)

    # ------------------------------------------------------------------
    # The copier

    def _run(self) -> Generator[Event, Any, None]:
        config = self.config
        array = self.array
        burst = 0
        while self._next_stripe < self.stripes_total:
            if self.status == "aborted":
                return
            if self._paused:
                resume = self.sim.event()
                self._resume_event = resume
                yield resume
                continue
            stripe = self._next_stripe
            yield from array.rebuild_lock_stripe(stripe)
            try:
                content = yield from self._reconstruct_stripe(stripe)
                yield from self._write_spare(stripe, content)
            except DiskHaltedError:
                # Power failed mid-copy: keep the checkpoint, wait for
                # power_on to resume, then re-copy this stripe.
                self.stripe_retries += 1
                self.pause("power failure observed")
                continue
            except DriveFailedError:
                self.stripe_retries += 1
                self._on_drive_death()
                if self.status != "running":
                    return
                continue
            finally:
                array.rebuild_unlock_stripe(stripe)
            # Atomic checkpoint: cursor and counter move in one
            # segment (no yield between) — see atomic_group above.
            self._next_stripe = stripe + 1
            self.stripes_rebuilt += 1
            burst += 1
            if (config.pause_ms > 0 and burst >= config.stripes_per_burst
                    and self._next_stripe < self.stripes_total):
                burst = 0
                yield self.sim.timeout(config.pause_ms)
        self.status = "complete"
        self.completed_at = self.sim.now
        array._rebuild_completed(self)
        if not self.done.triggered:
            self.done.succeed("complete")

    def _on_drive_death(self) -> None:
        """A member command died whole-drive during the copy."""
        if self.spare.dead:
            self.abort("spare drive died during rebuild")
            self.array._rebuild_aborted(self)
            return
        try:
            self.array._note_drive_death()
        except RaidFailedError:
            # A survivor died: fail_drive() already aborted this
            # engine and flagged the array; foreground I/O raises
            # loudly — the copier just stops.
            return

    def _reconstruct_stripe(
        self, stripe: int,
    ) -> Generator[Event, Any, bytes]:
        """XOR the survivors' stripe units into the lost member's."""
        # unit: (stripe: scalar)
        array = self.array
        member_lba = stripe * array.stripe_unit
        priority = self.config.priority
        reads: List[Process] = []
        survivors: List[DiskDrive] = []
        for index, drive in enumerate(array.drives):
            if index == self.member_index:
                continue
            request = drive.read(member_lba, array.stripe_unit,
                                 priority=priority)
            # A halt or death storm can fail several survivor reads in
            # one kernel step — before this generator is thrown into —
            # so each carries a defuse-on-failure callback from birth.
            request.add_callback(_defuse_if_failed)
            reads.append(request)
            survivors.append(drive)
        try:
            yield self.sim.all_of(reads)
        except UnrecoverableSectorError:
            _absorb_failures(reads)
            # Bad-sector-aware degradation: re-read the failed
            # survivors sector by sector and record what stays lost.
            pieces: List[bytes] = []
            for request, drive in zip(reads, survivors):
                if request.ok:
                    self.member_reads += 1
                    pieces.append(request.value.data)
                else:
                    piece = yield from self._salvage_member(
                        drive, member_lba, array.stripe_unit)
                    pieces.append(piece)
            return _xor(pieces)
        except BaseException:
            _absorb_failures(reads)
            raise
        self.member_reads += len(reads)
        return _xor([request.value.data for request in reads])

    def _salvage_member(
        self, drive: DiskDrive, member_lba: Lba, count: Sectors,
    ) -> Generator[Event, Any, bytes]:
        """Per-sector fallback read of one survivor extent.

        Sectors the drive cannot deliver even one at a time are
        recorded in :attr:`lost_sectors` and substituted with zeros:
        the reconstructed member sector of that row is then wrong, and
        the record is the audit trail saying so.
        """
        sector_size = self.array.sector_size
        sectors: List[bytes] = []
        for offset in range(count):
            address = member_lba + offset
            self.salvage_reads += 1
            try:
                result = yield drive.read(address, 1,
                                          priority=self.config.priority)
            except UnrecoverableSectorError:
                self.lost_sectors.append((drive.name, address))
                sectors.append(bytes(sector_size))
                continue
            self.member_reads += 1
            sectors.append(result.data)
        return b"".join(sectors)

    def _write_spare(
        self, stripe: int, content: bytes,
    ) -> Generator[Event, Any, None]:
        """Land one reconstructed stripe unit on the spare.

        An unwritable target is relocated to the spare-sector pool and
        retried (``spare_write_retries`` times); sectors that stay
        unwritable are recorded as lost and skipped — the copier keeps
        going rather than wedging the whole rebuild on one bad spot.
        """
        # unit: (stripe: scalar)
        member_lba = stripe * self.array.stripe_unit
        attempts_left = self.config.spare_write_retries
        while True:
            try:
                yield self.spare.write(member_lba, content,
                                       priority=self.config.priority)
            except UnrecoverableSectorError as error:
                if attempts_left > 0:
                    attempts_left -= 1
                    self.spare_relocations += self.spare.relocate(
                        member_lba, self.array.stripe_unit)
                    continue
                self.lost_sectors.append(
                    (self.spare.name,
                     error.lba if error.lba is not None else member_lba))
                return
            self.member_writes += 1
            return

    # ------------------------------------------------------------------
    # TRAILSAN runtime checks

    def _san_progress_probe(self) -> Tuple[object, ...]:
        return self._next_stripe, self.stripes_rebuilt

    def _san_progress_judge(self, old: Tuple[object, ...],
                            new: Tuple[object, ...]) -> Optional[str]:
        old_next, old_done = old
        new_next, new_done = new
        if not (isinstance(new_next, int) and isinstance(new_done, int)
                and isinstance(old_next, int)):
            return None  # pragma: no cover — fields are always ints
        if new_next < old_next:
            return (f"rebuild watermark moved backwards "
                    f"({old_next} -> {new_next})")
        if new_next != new_done:
            return (f"checkpoint torn: next_stripe {new_next} != "
                    f"stripes_rebuilt {new_done} — the pair must move "
                    f"in one atomic segment")
        return None
