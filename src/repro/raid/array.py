"""A RAID-5 disk array with the classic small-write problem.

The paper's conclusion names "using track-based logging to solve the
small write problem in RAID-5 disk arrays" as ongoing work.  This
module provides the substrate: a left-symmetric RAID-5 array over N
simulated drives with byte-accurate parity, whose small writes pay the
textbook read-modify-write penalty — read old data, read old parity,
write new data, write new parity (two serial disk rounds) — while
full-stripe writes compute parity directly.

The array exposes the same call shapes as a :class:`DiskDrive`
(``read``/``write``/``halt`` returning processes with ``.data``), so a
:class:`~repro.core.driver.TrailDriver` can front it as a "data disk":
Trail acknowledges each small write after one fast log-disk write and
performs the 4-I/O parity update asynchronously — the solution the
paper sketches.  Degraded-mode reads reconstruct a failed drive's
contents by XOR across the survivors, which works on real bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Sequence, Tuple

from repro.disk.controller import PRIORITY_READ
from repro.disk.drive import DiskDrive
from repro.disk.geometry import DiskGeometry, uniform_geometry
from repro.errors import DiskError
from repro.sim import Event, Process, Simulation


@dataclass
class RaidResult:
    """Completion record for one array operation."""

    lba: int
    nsectors: int
    started_at: float
    completed_at: float
    data: Optional[bytes] = None
    #: Member-disk commands this operation issued.
    member_ios: int = 0

    @property
    def latency_ms(self) -> float:
        return self.completed_at - self.started_at


@dataclass
class RaidStats:
    """Array-level counters."""

    reads: int = 0
    writes: int = 0
    small_writes: int = 0
    full_stripe_writes: int = 0
    degraded_reads: int = 0
    member_ios: int = 0


class Raid5Array:
    """Left-symmetric RAID-5 with rotating parity."""

    def __init__(
        self,
        sim: Simulation,
        drives: Sequence[DiskDrive],
        stripe_unit_sectors: int = 8,
        name: str = "raid5",
    ) -> None:
        if len(drives) < 3:
            raise DiskError("RAID-5 needs at least 3 drives")
        if stripe_unit_sectors < 1:
            raise DiskError("stripe unit must be >= 1 sector")
        self.sim = sim
        self.drives: List[DiskDrive] = list(drives)
        self.stripe_unit = stripe_unit_sectors
        self.name = name
        self.stats = RaidStats()
        self.sector_size = drives[0].geometry.sector_size
        member_sectors = min(drive.geometry.total_sectors
                             for drive in drives)
        self._units_per_drive = member_sectors // stripe_unit_sectors
        data_drives = len(drives) - 1
        self.total_sectors = (self._units_per_drive * data_drives
                              * stripe_unit_sectors)
        #: Facade geometry so drivers can validate extents against the
        #: array's logical capacity.
        self.geometry: DiskGeometry = uniform_geometry(
            cylinders=1, heads=1, sectors_per_track=self.total_sectors)
        self._failed: Optional[int] = None
        self.rotation = drives[0].rotation  # facade for introspection

    # ------------------------------------------------------------------
    # Address mapping (left-symmetric layout)

    def _locate(self, unit_index: int) -> Tuple[int, int, int, int]:
        """Map a logical stripe-unit index to (drive, member LBA)."""
        width = len(self.drives)
        stripe, offset = divmod(unit_index, width - 1)
        parity_drive = (width - 1 - stripe % width) % width
        data_drive = (parity_drive + 1 + offset) % width
        member_lba = stripe * self.stripe_unit
        return data_drive, parity_drive, stripe, member_lba

    def parity_drive_of_stripe(self, stripe: int) -> int:
        """Which member holds parity for ``stripe`` (for tests)."""
        width = len(self.drives)
        return (width - 1 - stripe % width) % width

    # ------------------------------------------------------------------
    # Failure injection

    def fail_drive(self, index: int) -> None:
        """Mark one member failed; reads reconstruct via parity."""
        if not 0 <= index < len(self.drives):
            raise DiskError(f"no member drive {index}")
        if self._failed is not None:
            raise DiskError("RAID-5 survives only one failure")
        self._failed = index

    @property
    def failed_drive(self) -> Optional[int]:
        return self._failed

    def halt(self) -> None:
        """Power failure across all members."""
        for drive in self.drives:
            drive.halt()

    def power_on(self) -> None:
        for drive in self.drives:
            drive.power_on()

    # ------------------------------------------------------------------
    # Public I/O (DiskDrive-compatible call shapes)

    def read(self, lba: int, nsectors: int,
             priority: int = PRIORITY_READ) -> Process:
        self.geometry.check_extent(lba, nsectors)
        return self.sim.process(self._read(lba, nsectors, priority),
                                name=f"{self.name}:read@{lba}")

    def write(self, lba: int, data: bytes,
              priority: int = PRIORITY_READ) -> Process:
        nsectors = max(1, (len(data) + self.sector_size - 1)
                       // self.sector_size)
        self.geometry.check_extent(lba, nsectors)
        padded = data + bytes(nsectors * self.sector_size - len(data))
        return self.sim.process(self._write(lba, padded, priority),
                                name=f"{self.name}:write@{lba}")

    # ------------------------------------------------------------------

    def _split_units(self, lba: int,
                     nsectors: int) -> List[Tuple[int, int, int]]:
        """Split an extent into per-stripe-unit (unit, offset, count)."""
        pieces = []
        current = lba
        remaining = nsectors
        while remaining > 0:
            unit = current // self.stripe_unit
            offset = current % self.stripe_unit
            take = min(remaining, self.stripe_unit - offset)
            pieces.append((unit, offset, take))
            current += take
            remaining -= take
        return pieces

    def _read(self, lba: int, nsectors: int,
              priority: int) -> Generator[Event, Any, "RaidResult"]:
        started = self.sim.now
        self.stats.reads += 1
        chunks: List[bytes] = []
        member_ios = 0
        for unit, offset, count in self._split_units(lba, nsectors):
            data_drive, parity_drive, stripe, member_lba = \
                self._locate(unit)
            if data_drive != self._failed:
                result = yield self.drives[data_drive].read(
                    member_lba + offset, count, priority=priority)
                member_ios += 1
                chunks.append(result.data)
            else:
                # Degraded: XOR the same range of every survivor
                # (including parity) to reconstruct.
                self.stats.degraded_reads += 1
                pieces = []
                for index, drive in enumerate(self.drives):
                    if index == data_drive:
                        continue
                    result = yield drive.read(member_lba + offset,
                                              count, priority=priority)
                    member_ios += 1
                    pieces.append(result.data)
                chunks.append(_xor(pieces))
        self.stats.member_ios += member_ios
        return RaidResult(lba=lba, nsectors=nsectors,
                          started_at=started, completed_at=self.sim.now,
                          data=b"".join(chunks), member_ios=member_ios)

    def _write(self, lba: int, data: bytes,
               priority: int) -> Generator[Event, Any, "RaidResult"]:
        started = self.sim.now
        self.stats.writes += 1
        nsectors = len(data) // self.sector_size
        member_ios = 0
        pieces = self._split_units(lba, nsectors)
        consumed = 0
        index = 0
        while index < len(pieces):
            # Full-stripe detection: width-1 consecutive whole units
            # starting at a stripe boundary.
            width = len(self.drives)
            group = pieces[index:index + width - 1]
            whole = (len(group) == width - 1
                     and all(offset == 0 and count == self.stripe_unit
                             for _unit, offset, count in group)
                     and group[0][0] % (width - 1) == 0
                     and all(group[i][0] + 1 == group[i + 1][0]
                             for i in range(len(group) - 1)))
            if whole:
                unit_bytes = self.stripe_unit * self.sector_size
                payloads = [data[consumed + i * unit_bytes:
                                 consumed + (i + 1) * unit_bytes]
                            for i in range(width - 1)]
                member_ios += yield from self._full_stripe_write(
                    group[0][0], payloads, priority)
                consumed += unit_bytes * (width - 1)
                index += width - 1
                self.stats.full_stripe_writes += 1
            else:
                unit, offset, count = pieces[index]
                chunk = data[consumed:consumed
                             + count * self.sector_size]
                member_ios += yield from self._small_write(
                    unit, offset, count, chunk, priority)
                consumed += count * self.sector_size
                index += 1
                self.stats.small_writes += 1
        self.stats.member_ios += member_ios
        return RaidResult(lba=lba, nsectors=nsectors,
                          started_at=started, completed_at=self.sim.now,
                          member_ios=member_ios)

    def _small_write(self, unit: int, offset: int, count: int,
                     chunk: bytes, priority: int) -> Generator[Event, Any, int]:
        """Read-modify-write: the RAID-5 small-write penalty."""
        data_drive, parity_drive, stripe, member_lba = self._locate(unit)
        target = member_lba + offset
        # Round 1: read old data and old parity concurrently.
        reads = []
        if data_drive != self._failed:
            reads.append(self.drives[data_drive].read(
                target, count, priority=priority))
        if parity_drive != self._failed:
            reads.append(self.drives[parity_drive].read(
                target, count, priority=priority))
        results = yield self.sim.all_of(reads)
        ordered = [event.value for event in reads]
        io_count = len(reads)
        _ = results
        if data_drive != self._failed and parity_drive != self._failed:
            old_data, old_parity = ordered[0].data, ordered[1].data
            new_parity = _xor([old_parity, old_data, chunk])
        else:
            # Degraded small write: just write what survives.
            new_parity = None
            old_data = ordered[0].data if ordered else bytes(len(chunk))
        # Round 2: write new data and new parity concurrently.
        writes = []
        if data_drive != self._failed:
            writes.append(self.drives[data_drive].write(
                target, chunk, priority=priority))
        if new_parity is not None:
            writes.append(self.drives[parity_drive].write(
                target, new_parity, priority=priority))
        if writes:
            yield self.sim.all_of(writes)
        return io_count + len(writes)

    def _full_stripe_write(self, first_unit: int,
                           payloads: List[bytes],
                           priority: int) -> Generator[Event, Any, int]:
        """Write a whole stripe: parity computed without reads."""
        parity = _xor(payloads)
        writes = []
        for piece_index, payload in enumerate(payloads):
            data_drive, parity_drive, stripe, member_lba = \
                self._locate(first_unit + piece_index)
            if data_drive != self._failed:
                writes.append(self.drives[data_drive].write(
                    member_lba, payload, priority=priority))
        _data_drive, parity_drive, _stripe, member_lba = \
            self._locate(first_unit)
        if parity_drive != self._failed:
            writes.append(self.drives[parity_drive].write(
                member_lba, parity, priority=priority))
        yield self.sim.all_of(writes)
        return len(writes)


def _xor(buffers: Sequence[bytes]) -> bytes:
    """Bytewise XOR of equal-length buffers."""
    if not buffers:
        raise DiskError("xor of nothing")
    out = bytearray(buffers[0])
    for buffer in buffers[1:]:
        if len(buffer) != len(out):
            raise DiskError("xor length mismatch")
        for index, byte in enumerate(buffer):
            out[index] ^= byte
    return bytes(out)
