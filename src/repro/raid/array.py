"""A RAID-5 disk array that survives whole-drive death.

The paper's conclusion names "using track-based logging to solve the
small write problem in RAID-5 disk arrays" as ongoing work.  This
module provides the substrate: a left-symmetric RAID-5 array over N
simulated drives with byte-accurate parity, whose small writes pay the
textbook read-modify-write penalty — read old data, read old parity,
write new data, write new parity (two serial disk rounds) — while
full-stripe writes compute parity directly.

Beyond the healthy-path striping core, the array is a fault-survivable
subsystem:

* **Member failure** — :meth:`Raid5Array.fail_drive` marks a member
  lost; reads reconstruct its contents by XOR across the survivors and
  writes keep parity consistent so nothing acknowledged is ever lost.
  Whole-drive death (:meth:`~repro.disk.drive.DiskDrive.fail`) is
  detected *automatically*: a member command failing with
  :class:`~repro.errors.DriveFailedError` marks the member failed and
  the foreground operation restarts against the degraded geometry —
  callers never see the error.
* **Hot spares and online rebuild** — with a spare attached, a member
  failure starts a :class:`~repro.raid.rebuild.RebuildEngine`: a
  background process reconstructing the lost member stripe-by-stripe
  onto the spare while foreground I/O keeps flowing.  A per-stripe
  gate keeps the copier and foreground *writers* off the same stripe
  (readers never block: the copier only writes to the spare).  Stripes
  below the engine's watermark are served from the spare.
* **Second failure** — a second distinct member loss exceeds RAID-5
  redundancy: the array fails loudly
  (:class:`~repro.errors.RaidFailedError`) instead of serving
  reconstructed garbage.  A dying *spare* is not fatal — the rebuild
  aborts and restarts on the next spare, or the array stays degraded.

The array exposes the same call shapes as a :class:`DiskDrive`
(``read``/``write``/``halt``/``relocate`` returning processes with
``.data``), so a :class:`~repro.core.driver.TrailDriver` can front it
as a "data disk": Trail acknowledges each small write after one fast
log-disk write and performs the 4-I/O parity update asynchronously —
the solution the paper sketches — and keeps absorbing writes at log
speed while the array is reconstructing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any, Dict, Generator, List, Optional, Sequence, Tuple, TYPE_CHECKING)

from repro.disk.controller import PRIORITY_READ
from repro.disk.drive import DiskDrive
from repro.disk.geometry import DiskGeometry, uniform_geometry
from repro.errors import DiskError, DriveFailedError, RaidFailedError
from repro.sim import Event, Process, Simulation
from repro.units import Lba, Ms, Sectors

if TYPE_CHECKING:  # pragma: no cover — cycle broken at runtime: the
    # rebuild module imports this one; start_rebuild imports it lazily.
    from repro.raid.rebuild import RebuildConfig, RebuildEngine


@dataclass
class RaidResult:
    """Completion record for one array operation."""

    lba: Lba
    nsectors: Sectors
    started_at: Ms
    completed_at: Ms
    data: Optional[bytes] = None
    #: Member-disk commands this operation issued.
    member_ios: int = 0

    @property
    def latency_ms(self) -> Ms:
        return self.completed_at - self.started_at


@dataclass
class RaidStats:
    """Array-level counters."""

    reads: int = 0
    writes: int = 0
    small_writes: int = 0
    full_stripe_writes: int = 0
    #: Reads that reconstructed a lost member's bytes via parity.
    degraded_reads: int = 0
    #: Writes issued while a member was unreachable (parity-only or
    #: data-only updates instead of the full RMW pair).
    degraded_writes: int = 0
    #: Foreground reads served from the spare's rebuilt prefix.
    spare_reads: int = 0
    #: Foreground writes landing on the spare's rebuilt prefix.
    spare_writes: int = 0
    #: Member commands issued on behalf of logical array operations.
    member_ios: int = 0
    #: Members marked failed over the array's lifetime.
    member_failures: int = 0
    #: Member failures discovered from an in-flight command's
    #: DriveFailedError rather than an explicit fail_drive() call.
    auto_detected_failures: int = 0
    #: Foreground operations restarted after a member died under them.
    op_retries: int = 0
    #: Foreground writes that waited for the rebuild copier to release
    #: their stripe (rebuild contention).
    gate_waits: int = 0

    @property
    def amplification(self) -> float:
        """Member commands per logical operation (I/O amplification)."""
        ops = self.reads + self.writes
        return self.member_ios / ops if ops else 0.0


class Raid5Array:
    """Left-symmetric RAID-5 with rotating parity, spares and rebuild."""

    def __init__(
        self,
        sim: Simulation,
        drives: Sequence[DiskDrive],
        stripe_unit_sectors: Sectors = 8,
        name: str = "raid5",
        spares: Sequence[DiskDrive] = (),
        auto_rebuild: bool = True,
        rebuild_config: Optional["RebuildConfig"] = None,
    ) -> None:
        if len(drives) < 3:
            raise DiskError("RAID-5 needs at least 3 drives")
        if stripe_unit_sectors < 1:
            raise DiskError("stripe unit must be >= 1 sector")
        self.sim = sim
        self.drives: List[DiskDrive] = list(drives)
        self.stripe_unit = stripe_unit_sectors
        self.name = name
        self.stats = RaidStats()
        self.sector_size = drives[0].geometry.sector_size
        member_sectors = min(drive.geometry.total_sectors
                             for drive in drives)
        self._units_per_drive = member_sectors // stripe_unit_sectors
        data_drives = len(drives) - 1
        self.total_sectors = (self._units_per_drive * data_drives
                              * stripe_unit_sectors)
        #: Facade geometry so drivers can validate extents against the
        #: array's logical capacity.
        self.geometry: DiskGeometry = uniform_geometry(
            cylinders=1, heads=1, sectors_per_track=self.total_sectors)
        self._failed: Optional[int] = None
        self._array_failed = False
        self.rotation = drives[0].rotation  # facade for introspection
        #: Whether a member failure starts a rebuild automatically
        #: whenever a hot spare is available.
        self.auto_rebuild = auto_rebuild
        self.rebuild_config = rebuild_config
        self._rebuild: Optional["RebuildEngine"] = None
        self._spares: List[DiskDrive] = []
        for spare in spares:
            self.add_hot_spare(spare)
        # Per-stripe gate between foreground writers and the rebuild
        # copier.  Foreground operations of one stripe may overlap each
        # other (exactly the pre-rebuild behaviour) but a writer never
        # overlaps the copier on the same stripe: a half-done RMW seen
        # by the copier would land stale parity on the spare.  In the
        # cooperative kernel a check-and-set with no yield between test
        # and update is atomic; the TRAILSAN=1 invariant below polices
        # the mutual exclusion at every context switch.  Both sides of
        # the gate carry the same atomic_group so trailsan forbids a
        # yield between test and set, and trailmc's footprint pass sees
        # every gate touch when deciding segment independence.
        self._stripe_writers: Dict[int, int] = \
            {}  # trailsan: atomic_group(raid-stripe-gate)
        self._rebuild_stripe: Optional[int] = \
            None  # trailsan: atomic_group(raid-stripe-gate)
        self._stripe_waiters: Dict[int, List[Event]] = {}
        sanitizer = sim.sanitizer
        if sanitizer is not None:
            sanitizer.add_invariant("raid-stripe-gate",
                                    self._san_gate_error)

    # ------------------------------------------------------------------
    # Address mapping (left-symmetric layout)

    def _locate(self, unit_index: int) -> Tuple[int, int, int, int]:
        """Map a logical stripe-unit index to (drive, member LBA)."""
        # unit: (unit_index: scalar) -> scalar
        width = len(self.drives)
        stripe, offset = divmod(unit_index, width - 1)
        parity_drive = (width - 1 - stripe % width) % width
        data_drive = (parity_drive + 1 + offset) % width
        member_lba = stripe * self.stripe_unit
        return data_drive, parity_drive, stripe, member_lba

    def parity_drive_of_stripe(self, stripe: int) -> int:
        """Which member holds parity for ``stripe`` (for tests)."""
        # unit: (stripe: scalar) -> scalar
        width = len(self.drives)
        return (width - 1 - stripe % width) % width

    @property
    def stripes_total(self) -> int:
        """Stripes in the array (= stripe units per member)."""
        return self._units_per_drive

    def _member(self, index: int, stripe: int) -> Optional[DiskDrive]:
        """The physical drive serving member ``index`` of ``stripe``.

        ``None`` when the member is unreachable — failed, and the
        stripe is not yet on a live spare — so the caller must go
        through parity instead.
        """
        # unit: (index: scalar, stripe: scalar)
        if index != self._failed:
            return self.drives[index]
        engine = self._rebuild
        if engine is not None and engine.covers(stripe):
            return engine.spare
        return None

    # ------------------------------------------------------------------
    # Failure injection, spares, rebuild

    def fail_drive(self, index: int, auto: bool = False) -> None:
        """Mark one member failed; reads reconstruct via parity.

        The first failure degrades the array (and starts a rebuild when
        a hot spare is attached and :attr:`auto_rebuild` is on).  A
        *second* distinct failure exceeds RAID-5 redundancy: the array
        transitions to failed and raises
        :class:`~repro.errors.RaidFailedError` — here and on every
        subsequent I/O — rather than serving unreconstructable bytes.
        """
        # unit: (index: scalar)
        if not 0 <= index < len(self.drives):
            raise DiskError(f"no member drive {index}")
        if self._array_failed:
            raise RaidFailedError(f"{self.name}: array has failed")
        if index == self._failed:
            return
        self.stats.member_failures += 1
        if auto:
            self.stats.auto_detected_failures += 1
        if self._failed is not None:
            self._array_failed = True
            engine = self._rebuild
            if engine is not None:
                engine.abort(f"member {index} failed during rebuild")
            raise RaidFailedError(
                f"{self.name}: member {index} failed while member "
                f"{self._failed} is still lost — RAID-5 survives only "
                f"one failure")
        self._failed = index
        if self.auto_rebuild and self._spares:
            self.start_rebuild(self.rebuild_config)

    @property
    def failed_drive(self) -> Optional[int]:
        return self._failed

    @property
    def array_failed(self) -> bool:
        """True once redundancy was exceeded (array serves nothing)."""
        return self._array_failed

    def add_hot_spare(self, spare: DiskDrive) -> None:
        """Attach a standby drive the rebuild engine may claim.

        If a member is already lost (and :attr:`auto_rebuild` is on)
        the rebuild starts immediately.
        """
        needed = self._units_per_drive * self.stripe_unit
        if spare.geometry.total_sectors < needed:
            raise DiskError(
                f"spare {spare.name} holds {spare.geometry.total_sectors}"
                f" sectors; members need {needed}")
        self._spares.append(spare)
        if (self.auto_rebuild and self._failed is not None
                and not self.rebuild_active):
            self.start_rebuild(self.rebuild_config)

    @property
    def hot_spares(self) -> Tuple[DiskDrive, ...]:
        """Standby drives not yet claimed by a rebuild."""
        return tuple(self._spares)

    @property
    def rebuild(self) -> Optional["RebuildEngine"]:
        """The most recent rebuild engine (any status), if one ran."""
        return self._rebuild

    @property
    def rebuild_active(self) -> bool:
        """True while a rebuild is running or paused."""
        engine = self._rebuild
        return engine is not None and engine.active

    @property
    def writeback_defer_ms(self) -> Ms:
        """Back-off hint for Trail's write-back scheduler.

        While a rebuild is actively copying, the array advertises the
        engine's configured defer so write-backs park briefly instead
        of piling onto contended members; 0.0 when healthy, paused or
        done, so the hint can never stall write-back forever.
        """
        engine = self._rebuild
        if engine is not None and engine.status == "running":
            return engine.config.writeback_defer_ms
        return 0.0

    def start_rebuild(
        self, config: Optional["RebuildConfig"] = None,
    ) -> "RebuildEngine":
        """Claim the next hot spare and start the online rebuild."""
        from repro.raid.rebuild import RebuildEngine
        if self._array_failed:
            raise RaidFailedError(f"{self.name}: array has failed")
        if self._failed is None:
            raise DiskError(f"{self.name}: no failed member to rebuild")
        if self.rebuild_active:
            raise DiskError(f"{self.name}: rebuild already in progress")
        if not self._spares:
            raise DiskError(f"{self.name}: no hot spare attached")
        spare = self._spares.pop(0)
        engine = RebuildEngine(self, spare, config)
        self._rebuild = engine
        engine.start()
        return engine

    def _rebuild_completed(self, engine: "RebuildEngine") -> None:
        """Swap the fully-rebuilt spare into the failed member's slot."""
        index = self._failed
        if index is None:  # pragma: no cover — engine guards this
            return
        self.drives[index] = engine.spare
        self._failed = None

    def _rebuild_aborted(self, engine: "RebuildEngine") -> None:
        """A rebuild died (usually the spare did).  Try the next spare;
        with none left the array just stays degraded."""
        if self._array_failed or self._failed is None:
            return
        if self.auto_rebuild and self._spares:
            self.start_rebuild(self.rebuild_config)

    def _note_drive_death(self) -> None:
        """React to a member command failing with DriveFailedError.

        Finds which physical drive died and records the failure:
        a dead spare aborts the rebuild (not fatal), a dead member
        degrades the array, a *second* dead member raises
        :class:`~repro.errors.RaidFailedError`.  Finding nothing new
        (a flapping drive already revived) is fine — the caller simply
        retries.
        """
        engine = self._rebuild
        if engine is not None and engine.active and engine.spare.dead:
            engine.abort("spare drive died during rebuild")
            self._rebuild_aborted(engine)
        for index, drive in enumerate(self.drives):
            if index != self._failed and drive.dead:
                self.fail_drive(index, auto=True)

    def halt(self) -> None:
        """Power failure across the whole enclosure.

        Members, unclaimed spares and the rebuild target all lose
        power; a running rebuild *pauses at its checkpoint* — progress
        is never reset — and resumes from the same stripe at
        :meth:`power_on`.
        """
        for drive in self.drives:
            drive.halt()
        for spare in self._spares:
            spare.halt()
        engine = self._rebuild
        if engine is not None:
            engine.spare.halt()
            if engine.active:
                engine.pause("power failure")

    def power_on(self) -> None:
        """Restore power; a paused rebuild resumes from its checkpoint."""
        for drive in self.drives:
            drive.power_on()
        for spare in self._spares:
            spare.power_on()
        engine = self._rebuild
        if engine is not None:
            engine.spare.power_on()
            if engine.paused:
                engine.resume()

    # ------------------------------------------------------------------
    # Stripe gate (foreground writers vs the rebuild copier)

    def _acquire_stripe(self, stripe: int) -> Generator[Event, Any, None]:
        """Foreground writer entry: wait out the copier, then hold."""
        # unit: (stripe: scalar)
        while self._rebuild_stripe == stripe:
            self.stats.gate_waits += 1
            gate = self.sim.event()
            self._stripe_waiters.setdefault(stripe, []).append(gate)
            yield gate
        self._stripe_writers[stripe] = \
            self._stripe_writers.get(stripe, 0) + 1

    def _release_stripe(self, stripe: int) -> None:
        # unit: (stripe: scalar)
        count = self._stripe_writers.get(stripe, 0) - 1
        if count > 0:
            self._stripe_writers[stripe] = count
            return
        self._stripe_writers.pop(stripe, None)
        self._wake_stripe_waiters(stripe)

    def rebuild_lock_stripe(
        self, stripe: int,
    ) -> Generator[Event, Any, None]:
        """Copier entry: wait out foreground writers, then own the
        stripe exclusively (engine-facing)."""
        # unit: (stripe: scalar)
        while self._stripe_writers.get(stripe, 0) > 0:
            gate = self.sim.event()
            self._stripe_waiters.setdefault(stripe, []).append(gate)
            yield gate
        self._rebuild_stripe = stripe

    def rebuild_unlock_stripe(self, stripe: int) -> None:
        """Copier exit; wakes any parked foreground writers."""
        # unit: (stripe: scalar)
        if self._rebuild_stripe == stripe:
            self._rebuild_stripe = None
        self._wake_stripe_waiters(stripe)

    def _wake_stripe_waiters(self, stripe: int) -> None:
        # unit: (stripe: scalar)
        for gate in self._stripe_waiters.pop(stripe, []):
            if not gate.triggered:
                gate.succeed(None)

    def _san_gate_error(self) -> Optional[str]:
        """TRAILSAN invariant: copier and writers never share a stripe."""
        stripe = self._rebuild_stripe
        if stripe is not None and self._stripe_writers.get(stripe, 0) > 0:
            return (f"stripe {stripe} is being rebuilt while "
                    f"{self._stripe_writers[stripe]} foreground "
                    f"writer(s) hold it")
        return None

    # ------------------------------------------------------------------
    # Public I/O (DiskDrive-compatible call shapes)

    def read(self, lba: Lba, nsectors: Sectors,
             priority: int = PRIORITY_READ) -> Process:
        self._check_alive()
        self.geometry.check_extent(lba, nsectors)
        return self.sim.process(self._read(lba, nsectors, priority),
                                name=f"{self.name}:read@{lba}")

    def write(self, lba: Lba, data: bytes,
              priority: int = PRIORITY_READ) -> Process:
        self._check_alive()
        nsectors = max(1, (len(data) + self.sector_size - 1)
                       // self.sector_size)
        self.geometry.check_extent(lba, nsectors)
        padded = data + bytes(nsectors * self.sector_size - len(data))
        return self.sim.process(self._write(lba, padded, priority),
                                name=f"{self.name}:write@{lba}")

    def relocate(self, lba: Lba, nsectors: Sectors) -> Sectors:
        """Delegate spare-sector remapping to the member drives.

        Upper layers (the write-back scheduler) call this on a
        persistently failing write target; the array forwards each
        stripe-unit piece to whichever physical drive serves it.
        """
        remapped = 0
        for unit, offset, count in self._split_units(lba, nsectors):
            data_drive, _parity, stripe, member_lba = self._locate(unit)
            drive = self._member(data_drive, stripe)
            if drive is not None:
                remapped += drive.relocate(member_lba + offset, count)
        return remapped

    def _check_alive(self) -> None:
        if self._array_failed:
            raise RaidFailedError(
                f"{self.name}: array has failed (lost more members "
                f"than parity covers)")

    # ------------------------------------------------------------------

    def _split_units(self, lba: Lba,
                     nsectors: Sectors) -> List[Tuple[int, int, int]]:
        """Split an extent into per-stripe-unit (unit, offset, count)."""
        pieces = []
        current = lba
        remaining = nsectors
        while remaining > 0:
            unit = current // self.stripe_unit
            offset = current % self.stripe_unit
            take = min(remaining, self.stripe_unit - offset)
            pieces.append((unit, offset, take))
            current += take
            remaining -= take
        return pieces

    def _read(self, lba: Lba, nsectors: Sectors,
              priority: int) -> Generator[Event, Any, "RaidResult"]:
        started = self.sim.now
        self.stats.reads += 1
        failure: Optional[DriveFailedError] = None
        # Each retry either succeeds against the post-failure geometry
        # or discovers one more dead drive, so the loop is bounded by
        # the member count (the +2 covers spare death and a flap).
        for attempt in range(len(self.drives) + 2):
            if attempt:
                self.stats.op_retries += 1
            try:
                chunks, member_ios = yield from self._read_attempt(
                    lba, nsectors, priority)
            except DriveFailedError as error:
                failure = error
                self._note_drive_death()
                continue
            self.stats.member_ios += member_ios
            return RaidResult(lba=lba, nsectors=nsectors,
                              started_at=started,
                              completed_at=self.sim.now,
                              data=b"".join(chunks),
                              member_ios=member_ios)
        raise failure if failure is not None else RaidFailedError(
            f"{self.name}: read retries exhausted")

    def _read_attempt(
        self, lba: Lba, nsectors: Sectors, priority: int,
    ) -> Generator[Event, Any, Tuple[List[bytes], int]]:
        chunks: List[bytes] = []
        member_ios = 0
        for unit, offset, count in self._split_units(lba, nsectors):
            data_drive, _parity_drive, stripe, member_lba = \
                self._locate(unit)
            drive = self._member(data_drive, stripe)
            if drive is not None:
                if data_drive == self._failed:
                    self.stats.spare_reads += 1
                result = yield drive.read(
                    member_lba + offset, count, priority=priority)
                member_ios += 1
                chunks.append(result.data)
            else:
                # Degraded: XOR the same range of every survivor
                # (including parity) to reconstruct.
                self.stats.degraded_reads += 1
                pieces = []
                for index in range(len(self.drives)):
                    if index == data_drive:
                        continue
                    result = yield self.drives[index].read(
                        member_lba + offset, count, priority=priority)
                    member_ios += 1
                    pieces.append(result.data)
                chunks.append(_xor(pieces))
        return chunks, member_ios

    def _write(self, lba: Lba, data: bytes,
               priority: int) -> Generator[Event, Any, "RaidResult"]:
        started = self.sim.now
        self.stats.writes += 1
        nsectors = len(data) // self.sector_size
        failure: Optional[DriveFailedError] = None
        for attempt in range(len(self.drives) + 2):
            if attempt:
                self.stats.op_retries += 1
            try:
                member_ios = yield from self._write_attempt(
                    lba, data, nsectors, priority)
            except DriveFailedError as error:
                failure = error
                self._note_drive_death()
                # Restarting the whole logical write is idempotent:
                # every piece rewrites the same bytes, and parity is
                # recomputed from whatever the first attempt left.
                continue
            self.stats.member_ios += member_ios
            return RaidResult(lba=lba, nsectors=nsectors,
                              started_at=started,
                              completed_at=self.sim.now,
                              member_ios=member_ios)
        raise failure if failure is not None else RaidFailedError(
            f"{self.name}: write retries exhausted")

    def _write_attempt(
        self, lba: Lba, data: bytes, nsectors: Sectors, priority: int,
    ) -> Generator[Event, Any, int]:
        member_ios = 0
        pieces = self._split_units(lba, nsectors)
        consumed = 0
        index = 0
        while index < len(pieces):
            # Full-stripe detection: width-1 consecutive whole units
            # starting at a stripe boundary.
            width = len(self.drives)
            group = pieces[index:index + width - 1]
            whole = (len(group) == width - 1
                     and all(offset == 0 and count == self.stripe_unit
                             for _unit, offset, count in group)
                     and group[0][0] % (width - 1) == 0
                     and all(group[i][0] + 1 == group[i + 1][0]
                             for i in range(len(group) - 1)))
            if whole:
                unit_bytes = self.stripe_unit * self.sector_size
                payloads = [data[consumed + i * unit_bytes:
                                 consumed + (i + 1) * unit_bytes]
                            for i in range(width - 1)]
                member_ios += yield from self._full_stripe_write(
                    group[0][0], payloads, priority)
                consumed += unit_bytes * (width - 1)
                index += width - 1
                self.stats.full_stripe_writes += 1
            else:
                unit, offset, count = pieces[index]
                chunk = data[consumed:consumed
                             + count * self.sector_size]
                member_ios += yield from self._small_write(
                    unit, offset, count, chunk, priority)
                consumed += count * self.sector_size
                index += 1
                self.stats.small_writes += 1
        return member_ios

    def _small_write(self, unit: int, offset: Sectors, count: Sectors,
                     chunk: bytes, priority: int,
                     ) -> Generator[Event, Any, int]:
        """Read-modify-write: the RAID-5 small-write penalty.

        Degraded variants keep every acknowledged byte representable:

        * data member lost — the new data exists only through parity,
          so parity is recomputed as XOR(other data units, new data);
        * parity member lost — only the data write is issued (parity is
          reconstructed later by the rebuild).
        """
        # unit: (unit: scalar)
        data_drive, parity_drive, stripe, member_lba = self._locate(unit)
        target = member_lba + offset
        yield from self._acquire_stripe(stripe)
        try:
            data_disk = self._member(data_drive, stripe)
            parity_disk = self._member(parity_drive, stripe)
            if data_disk is not None and data_drive == self._failed:
                self.stats.spare_writes += 1
            if data_disk is not None and parity_disk is not None:
                # Round 1: read old data and old parity concurrently.
                reads = [data_disk.read(target, count, priority=priority),
                         parity_disk.read(target, count,
                                          priority=priority)]
                yield from self._await_all(reads)
                old_data, old_parity = (reads[0].value.data,
                                        reads[1].value.data)
                new_parity = _xor([old_parity, old_data, chunk])
                # Round 2: write new data and new parity concurrently.
                writes = [data_disk.write(target, chunk,
                                          priority=priority),
                          parity_disk.write(target, new_parity,
                                            priority=priority)]
                yield from self._await_all(writes)
                return len(reads) + len(writes)
            self.stats.degraded_writes += 1
            if parity_disk is None:
                # Parity member lost: the data write alone carries the
                # update; rebuild recomputes parity from data later.
                assert data_disk is not None
                yield data_disk.write(target, chunk, priority=priority)
                return 1
            # Data member lost: fold the new data into parity so a
            # degraded read (XOR of survivors) returns it.  Parity of
            # the written range becomes XOR(other data units, chunk).
            reads = []
            for other in range(len(self.drives)):
                if other in (data_drive, parity_drive):
                    continue
                reads.append(self.drives[other].read(
                    target, count, priority=priority))
            yield from self._await_all(reads)
            new_parity = _xor([event.value.data
                               for event in reads] + [chunk])
            yield parity_disk.write(target, new_parity,
                                    priority=priority)
            return len(reads) + 1
        finally:
            self._release_stripe(stripe)

    def _full_stripe_write(self, first_unit: int,
                           payloads: List[bytes],
                           priority: int) -> Generator[Event, Any, int]:
        """Write a whole stripe: parity computed without reads."""
        # unit: (first_unit: scalar)
        parity = _xor(payloads)
        _dd, parity_drive, stripe, member_lba = self._locate(first_unit)
        yield from self._acquire_stripe(stripe)
        try:
            writes = []
            degraded = False
            for piece_index, payload in enumerate(payloads):
                data_drive, _pd, _stripe, _lba = \
                    self._locate(first_unit + piece_index)
                drive = self._member(data_drive, stripe)
                if drive is None:
                    degraded = True
                    continue
                if data_drive == self._failed:
                    self.stats.spare_writes += 1
                writes.append(drive.write(member_lba, payload,
                                          priority=priority))
            parity_disk = self._member(parity_drive, stripe)
            if parity_disk is None:
                degraded = True
            else:
                writes.append(parity_disk.write(member_lba, parity,
                                                priority=priority))
            if degraded:
                self.stats.degraded_writes += 1
            yield from self._await_all(writes)
            return len(writes)
        finally:
            self._release_stripe(stripe)

    def _await_all(
        self, events: Sequence[Process],
    ) -> Generator[Event, Any, None]:
        """Wait for parallel member commands; stray failures defused.

        ``sim.all_of`` defuses only the *first* failing child.  A
        power cut or drive-death storm can fail *several* in-flight
        member commands in the same kernel step — and the siblings'
        failures are processed before this generator gets its throw —
        so every command carries a defuse-on-failure callback from
        birth.  The round's outcome still surfaces through the
        ``all_of`` (its condition fails with the first exception).
        """
        if not events:
            return
        for event in events:
            event.add_callback(_defuse_if_failed)
        try:
            yield self.sim.all_of(events)
        except BaseException:
            _absorb_failures(events)
            raise


def _absorb_failures(events: Sequence[Process]) -> None:
    """Defuse failures of ``events`` that no waiter will consume."""
    for event in events:
        if event.triggered:
            if event.exception is not None:
                event.defuse()
        else:
            event.add_callback(_defuse_if_failed)


def _defuse_if_failed(event: Event) -> None:
    if event.exception is not None:
        event.defuse()


def _xor(buffers: Sequence[bytes]) -> bytes:
    """Bytewise XOR of equal-length buffers."""
    if not buffers:
        raise DiskError("xor of nothing")
    out = bytearray(buffers[0])
    for buffer in buffers[1:]:
        if len(buffer) != len(out):
            raise DiskError("xor length mismatch")
        for index, byte in enumerate(buffer):
            out[index] ^= byte
    return bytes(out)
