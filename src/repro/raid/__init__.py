"""RAID-5 substrate for the paper's small-write future-work item."""

from repro.raid.array import Raid5Array, RaidResult, RaidStats

__all__ = ["Raid5Array", "RaidResult", "RaidStats"]
