"""Fault-survivable RAID-5 substrate for the paper's future-work item.

* :mod:`repro.raid.array` — the left-symmetric striping core with
  degraded-mode serving, hot spares, and automatic whole-drive-death
  detection.
* :mod:`repro.raid.rebuild` — the online rebuild engine reconstructing
  a dead member onto a spare while foreground I/O keeps flowing.
* :mod:`repro.raid.scenario` — the ``repro raid-rebuild`` CLI
  experiment (imported lazily by the CLI; it pulls in the whole Trail
  stack).
"""

from repro.raid.array import Raid5Array, RaidResult, RaidStats
from repro.raid.rebuild import RebuildConfig, RebuildEngine

__all__ = [
    "Raid5Array",
    "RaidResult",
    "RaidStats",
    "RebuildConfig",
    "RebuildEngine",
]
