"""Exception hierarchy for the Trail reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so
that callers can catch library errors without masking programming
mistakes (``TypeError`` etc. propagate unchanged).
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Misuse of the simulation kernel (e.g. running a finished sim)."""


class SanitizerError(SimulationError):
    """A ``TRAILSAN=1`` runtime check observed a declared atomic group
    torn at a context switch (see ``repro.sim.sanitizer``)."""


class ExplorationError(SimulationError):
    """The bounded schedule explorer found a broken schedule.

    Raised by :mod:`repro.sim.explore` when an explored interleaving
    deadlocks (an awaited event can no longer fire), exceeds its
    dispatch budget (livelock), or replays nondeterministically
    (the same decision prefix reached a different choice point).
    """


class DiskError(ReproError):
    """Base class for disk-simulator errors."""


class AddressError(DiskError):
    """A logical or physical disk address is out of range."""


class GeometryError(DiskError):
    """A disk geometry description is inconsistent."""


class MediaError(DiskError):
    """Base class for errors originating in the recording medium itself.

    The taxonomy distinguishes three failure modes a caller may want to
    handle differently:

    * :class:`UnformattedReadError` — the sector holds no written data;
      a software/layout problem, not a hardware fault.
    * :class:`UnrecoverableSectorError` — the drive exhausted its retry
      and remap budget; the sector's contents are gone.
    * :class:`TransientIoError` — a single attempt failed but a retry
      may succeed.  Normally absorbed by the drive's internal retry
      loop; escapes only when the retry budget is disabled.

    Silent corruption by definition raises nothing at the disk layer;
    it is detected (if at all) by upper-layer checksums, which raise
    :class:`CorruptDataError`.
    """

    #: LBA of the failing sector, when known (``None`` otherwise).
    lba: Optional[int] = None

    def __init__(self, message: str, lba: Optional[int] = None) -> None:
        super().__init__(message)
        self.lba = lba


class UnformattedReadError(MediaError):
    """A sector read found no written data (unformatted media).

    Historical note: this condition was previously reported as the
    ``MediaError`` base class itself; it is now a distinct subclass so
    "nothing was ever written here" cannot be confused with "the media
    destroyed what was written" (:class:`UnrecoverableSectorError`).
    """


class TransientIoError(MediaError):
    """One read/write attempt failed; the same command may succeed if
    retried.  Models soft errors (vibration, marginal signal).  The
    drive retries these internally up to its bounded retry budget."""


class UnrecoverableSectorError(MediaError):
    """A sector could not be read or written after exhausting retries.

    For writes the drive first tries to remap the sector to a spare;
    this error means the spare pool is exhausted too.  For reads there
    is nothing to remap to — the recorded data is lost.
    """


class CorruptDataError(MediaError):
    """A checksum detected that stored data was silently corrupted.

    Raised by layers that maintain checksums (the Trail record format),
    never by the drive itself: silent corruption is silent precisely
    because the hardware reports success.
    """


class DriveFailedError(MediaError):
    """The whole drive died; every command to it fails.

    Unlike :class:`DiskHaltedError` (power loss — temporary, contents
    persist and the host retries after power returns), a failed drive
    is *gone* as far as the array layer is concerned: commands in
    flight error, new commands error, and the only remedies are a
    RAID-level rebuild onto a spare or (for a flapping drive that
    :meth:`~repro.disk.drive.DiskDrive.revive`\\ s) treating it as a
    fresh, stale member.  A ``MediaError`` subclass so every hardened
    retry/degrade path treats drive death like any other unrecoverable
    media fault.
    """


class RaidFailedError(DiskError):
    """The array lost more members than its redundancy covers.

    RAID-5 survives exactly one failed member; a second distinct
    failure (e.g. during rebuild) means data in the doubly-failed
    stripes is unrecoverable.  The array fails loudly on subsequent
    I/O instead of serving reconstructed garbage.
    """


class DiskHaltedError(DiskError):
    """The drive lost power while this command was in flight.

    Whole sectors already transferred to the platter persist; the rest
    of the command is lost, exactly like a real power failure.
    """


class TrailError(ReproError):
    """Base class for Trail-driver errors."""


class LogFormatError(TrailError):
    """An on-disk log structure failed to parse or validate."""


class LogDiskFullError(TrailError):
    """The circular log ran out of free tracks (Section 4.4)."""


class RecoveryError(TrailError):
    """Crash recovery could not reconstruct a consistent state."""


class NotATrailDiskError(TrailError):
    """The disk's header signature does not identify a Trail log disk."""


class DatabaseError(ReproError):
    """Base class for the transaction-engine substrate."""


class TransactionAborted(DatabaseError):
    """A transaction was rolled back (deadlock victim or explicit abort)."""


class DeadlockError(TransactionAborted):
    """Lock acquisition formed a cycle; this transaction was chosen victim."""


class IntentionalRollback(TransactionAborted):
    """A workload-specified rollback (e.g. TPC-C's 1% invalid-item
    New-Order transactions); not retried."""


class WorkloadError(ReproError):
    """A workload generator was configured inconsistently."""
