"""Exception hierarchy for the Trail reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so
that callers can catch library errors without masking programming
mistakes (``TypeError`` etc. propagate unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Misuse of the simulation kernel (e.g. running a finished sim)."""


class DiskError(ReproError):
    """Base class for disk-simulator errors."""


class AddressError(DiskError):
    """A logical or physical disk address is out of range."""


class GeometryError(DiskError):
    """A disk geometry description is inconsistent."""


class MediaError(DiskError):
    """A sector read found no written data (unformatted media)."""


class DiskHaltedError(DiskError):
    """The drive lost power while this command was in flight.

    Whole sectors already transferred to the platter persist; the rest
    of the command is lost, exactly like a real power failure.
    """


class TrailError(ReproError):
    """Base class for Trail-driver errors."""


class LogFormatError(TrailError):
    """An on-disk log structure failed to parse or validate."""


class LogDiskFullError(TrailError):
    """The circular log ran out of free tracks (Section 4.4)."""


class RecoveryError(TrailError):
    """Crash recovery could not reconstruct a consistent state."""


class NotATrailDiskError(TrailError):
    """The disk's header signature does not identify a Trail log disk."""


class DatabaseError(ReproError):
    """Base class for the transaction-engine substrate."""


class TransactionAborted(DatabaseError):
    """A transaction was rolled back (deadlock victim or explicit abort)."""


class DeadlockError(TransactionAborted):
    """Lock acquisition formed a cycle; this transaction was chosen victim."""


class IntentionalRollback(TransactionAborted):
    """A workload-specified rollback (e.g. TPC-C's 1% invalid-item
    New-Order transactions); not retried."""


class WorkloadError(ReproError):
    """A workload generator was configured inconsistently."""
