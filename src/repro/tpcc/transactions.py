"""The five TPC-C transaction profiles (clause 2).

Each method returns a *body* — a generator function over an engine
transaction — suitable for
:meth:`~repro.db.engine.TransactionEngine.run_transaction`.  The bodies
perform the spec's record accesses (locks, page fetches, CPU) and log
full after-images through the engine, which is what generates the
~4 KB-per-transaction log volume behind the paper's Tables 2 and 3.

Domain state is mutated optimistically at access time and not undone on
abort; the only aborts are deadlock victims (retried, so the final
state converges) and the spec's intentional 1 % New-Order rollbacks
(which the spec *requires* to leave no trace — they roll back before
touching domain state).
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.db.engine import Transaction, TransactionEngine
from repro.errors import IntentionalRollback
from repro.tpcc.loader import TpccDatabase
from repro.tpcc.random_gen import TpccRandom
from repro.tpcc.schema import (
    CUSTOMERS_PER_DISTRICT, DISTRICTS_PER_WAREHOUSE, TRANSACTION_MIX)

Body = Callable[[Transaction], Generator]


class TpccTransactions:
    """Factory for transaction bodies bound to one database."""

    def __init__(self, engine: TransactionEngine, db: TpccDatabase,
                 rnd: TpccRandom) -> None:
        self.engine = engine
        self.db = db
        self.rnd = rnd
        self.scale = db.scale

    # ------------------------------------------------------------------

    def choose_type(self) -> str:
        """Draw a transaction type from the standard mix."""
        pick = self.rnd.decimal(0.0, 100.0)
        cumulative = 0.0
        for name, weight in TRANSACTION_MIX:
            cumulative += weight
            if pick < cumulative:
                return name
        return TRANSACTION_MIX[0][0]

    def make(self, tx_type: str, home_warehouse: int) -> Body:
        """Build a body for ``tx_type`` anchored at ``home_warehouse``."""
        factory = {
            "new_order": self.new_order,
            "payment": self.payment,
            "order_status": self.order_status,
            "delivery": self.delivery,
            "stock_level": self.stock_level,
        }.get(tx_type)
        if factory is None:
            raise ValueError(f"unknown transaction type {tx_type!r}")
        return factory(home_warehouse)

    # ------------------------------------------------------------------
    # New-Order (clause 2.4): ~45% of the mix, the tpmC metric

    def new_order(self, w: int) -> Body:
        engine, db, rnd, scale = self.engine, self.db, self.rnd, self.scale

        def body(tx: Transaction) -> Generator:
            d = rnd.district_id()
            c = rnd.customer_id()
            district_index = scale.district_index(w, d)
            ol_cnt = rnd.order_line_count()
            rollback = rnd.invalid_item()

            yield from engine.read_record(tx, db.warehouse,
                                          scale.warehouse_index(w))
            yield from engine.write_record(tx, db.district, district_index)
            yield from engine.read_record(tx, db.customer,
                                          scale.customer_index(w, d, c))

            o_id = db.next_o_id[district_index]
            for line in range(1, ol_cnt + 1):
                if rollback and line == ol_cnt:
                    # Unused item id: the spec's 1% intentional rollback.
                    raise IntentionalRollback("invalid item id")
                item = rnd.item_id()
                supply_w, _remote = rnd.remote_warehouse(
                    w, scale.warehouses)
                yield from engine.read_record(tx, db.item,
                                              scale.item_index(item))
                stock_index = scale.stock_index(supply_w, item)
                yield from engine.write_record(tx, db.stock, stock_index)
                quantity = rnd.quantity()
                if db.stock_quantity[stock_index] >= quantity + 10:
                    db.stock_quantity[stock_index] -= quantity
                else:
                    db.stock_quantity[stock_index] += 91 - quantity
                db.stock_ytd[stock_index] += quantity
                yield from engine.write_record(
                    tx, db.order_line,
                    scale.order_line_index(w, d, o_id, line))

            yield from engine.write_record(tx, db.order,
                                           scale.order_index(w, d, o_id))
            yield from engine.write_record(tx, db.new_order,
                                           scale.order_index(w, d, o_id))

            db.next_o_id[district_index] = o_id + 1
            db.order_info[scale.order_index(w, d, o_id)] = (c, ol_cnt, False)
            db.last_order_of[scale.customer_index(w, d, c)] = o_id
            db.undelivered[district_index].append(o_id)

        return body

    # ------------------------------------------------------------------
    # Payment (clause 2.5): ~43% of the mix

    def payment(self, w: int) -> Body:
        engine, db, rnd, scale = self.engine, self.db, self.rnd, self.scale

        def body(tx: Transaction) -> Generator:
            d = rnd.district_id()
            amount = rnd.payment_amount()

            yield from engine.write_record(tx, db.warehouse,
                                           scale.warehouse_index(w))
            yield from engine.write_record(tx, db.district,
                                           scale.district_index(w, d))

            if rnd.by_last_name():
                # Selecting by last name scans the name index: read a
                # couple of candidate customers before the midpoint one.
                c = rnd.customer_id()
                for probe in range(2):
                    candidate = 1 + (c + probe) % CUSTOMERS_PER_DISTRICT
                    yield from engine.read_record(
                        tx, db.customer,
                        scale.customer_index(w, d, candidate))
            else:
                c = rnd.customer_id()
            customer_index = scale.customer_index(w, d, c)
            yield from engine.write_record(tx, db.customer, customer_index)
            db.customer_balance[customer_index] -= amount
            db.warehouse_ytd[scale.warehouse_index(w)] += amount
            db.district_ytd[scale.district_index(w, d)] += amount

            yield from engine.write_record(tx, db.history,
                                           db.history_next
                                           % db.history.spec.max_rows)
            db.history_next += 1

        return body

    # ------------------------------------------------------------------
    # Order-Status (clause 2.6): read-only, ~4%

    def order_status(self, w: int) -> Body:
        engine, db, rnd, scale = self.engine, self.db, self.rnd, self.scale

        def body(tx: Transaction) -> Generator:
            d = rnd.district_id()
            c = rnd.customer_id()
            customer_index = scale.customer_index(w, d, c)
            if rnd.by_last_name():
                yield from engine.read_record(
                    tx, db.customer,
                    scale.customer_index(
                        w, d, 1 + c % CUSTOMERS_PER_DISTRICT))
            yield from engine.read_record(tx, db.customer, customer_index)

            o_id = db.last_order_of.get(customer_index)
            if o_id is None:
                return
            order_index = scale.order_index(w, d, o_id)
            yield from engine.read_record(tx, db.order, order_index)
            _customer, ol_cnt, _delivered = db.order_info.get(
                order_index, (c, 5, True))
            for line in range(1, ol_cnt + 1):
                yield from engine.read_record(
                    tx, db.order_line,
                    scale.order_line_index(w, d, o_id, line))

        return body

    # ------------------------------------------------------------------
    # Delivery (clause 2.7): batch over all 10 districts, ~4%

    def delivery(self, w: int) -> Body:
        engine, db, rnd, scale = self.engine, self.db, self.rnd, self.scale

        def body(tx: Transaction) -> Generator:
            for d in range(1, DISTRICTS_PER_WAREHOUSE + 1):
                district_index = scale.district_index(w, d)
                if not db.undelivered[district_index]:
                    continue
                o_id = db.undelivered[district_index].popleft()
                order_index = scale.order_index(w, d, o_id)
                c, ol_cnt, _delivered = db.order_info.get(
                    order_index, (1, 5, False))

                yield from engine.write_record(tx, db.new_order,
                                               order_index)
                yield from engine.write_record(tx, db.order, order_index)
                total = 0.0
                for line in range(1, ol_cnt + 1):
                    yield from engine.write_record(
                        tx, db.order_line,
                        scale.order_line_index(w, d, o_id, line))
                    total += rnd.decimal(0.01, 9999.99)
                customer_index = scale.customer_index(w, d, c)
                yield from engine.write_record(tx, db.customer,
                                               customer_index)
                db.customer_balance[customer_index] += total
                db.order_info[order_index] = (c, ol_cnt, True)

        return body

    # ------------------------------------------------------------------
    # Stock-Level (clause 2.8): read-only, heavy scan, ~4%

    def stock_level(self, w: int) -> Body:
        engine, db, rnd, scale = self.engine, self.db, self.rnd, self.scale

        def body(tx: Transaction) -> Generator:
            d = rnd.district_id()
            district_index = scale.district_index(w, d)
            threshold = rnd.threshold()
            yield from engine.read_record(tx, db.district, district_index)

            tail = db.next_o_id[district_index]
            low = max(1, tail - 20)
            below = 0
            for o_id in range(low, tail):
                order_index = scale.order_index(w, d, o_id)
                _c, ol_cnt, _delivered = db.order_info.get(
                    order_index, (1, 5, True))
                for line in range(1, ol_cnt + 1):
                    yield from engine.read_record(
                        tx, db.order_line,
                        scale.order_line_index(w, d, o_id, line))
                    stock_index = scale.stock_index(
                        w, 1 + rnd.item_id() % 100_000)
                    yield from engine.read_record(tx, db.stock, stock_index)
                    if db.stock_quantity[stock_index] < threshold:
                        below += 1

        return body
