"""TPC-C database construction (clause 4.3 population rules).

``TpccDatabase`` owns both the *physical* schema — nine engine tables
placed on the two table disks, as in the paper's setup — and the
compact *domain state* the transactions need (stock quantities, next
order ids, undelivered-order queues, order metadata).  Population is an
offline step, like the paper's pre-built database; the optional cache
warm-up stands in for its 200,000 warm-up transactions.

Hot-path notes (see docs/PERFORMANCE.md): the 30,000 initial orders per
warehouse are *lazy* — their metadata is a pure function of the seed
and the order index, computed on first touch by ``__missing__`` instead
of materialized up front.  The initial order→customer assignment is an
affine permutation (invertible, so a customer's initial order is also
O(1)), which preserves the clause 4.3 invariant that each 3000-order
block touches every customer of its district exactly once.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.db.engine import Table, TableSpec, TransactionEngine
from repro.tpcc.random_gen import TpccRandom
from repro.tpcc.schema import (
    CUSTOMERS_PER_DISTRICT, DISTRICTS_PER_WAREHOUSE,
    INITIAL_NEW_ORDERS_PER_DISTRICT, INITIAL_ORDERS_PER_DISTRICT, ITEMS,
    RECORD_BYTES, TpccScale)

#: Data-disk ids used by the paper's layout: disk 0 is dedicated to the
#: database log, tables live on disks 1 and 2.
LOG_DISK = 0
TABLE_DISK_A = 1
TABLE_DISK_B = 2

#: Multiplier of the per-district affine customer permutation.  Coprime
#: to CUSTOMERS_PER_DISTRICT (= 2^3·3·5^3 · nothing in common with the
#: prime 1021), so orders 1..3000 hit each customer exactly once.
_PERM_MULT = 1021
_PERM_INV = pow(_PERM_MULT, -1, CUSTOMERS_PER_DISTRICT)
#: Knuth multiplicative-hash constants for the per-order draws.
_HASH_MULT = 2654435761
_HASH_GOLDEN = 0x9E3779B9


def _district_offset(seed: int, district_index: int) -> int:
    """Per-district rotation of the customer permutation."""
    return (seed * _HASH_MULT
            + district_index * 40503) % CUSTOMERS_PER_DISTRICT


def _initial_ol_cnt(seed: int, order_index: int) -> int:
    """Deterministic ol_cnt in [5, 15] for an initial order."""
    h = (order_index * _HASH_MULT + seed * _HASH_GOLDEN) & 0xFFFFFFFF
    return 5 + (h >> 7) % 11


class _LazyOrderInfo(Dict[int, Tuple[int, int, bool]]):
    """order global index -> (customer id, ol_cnt, delivered flag).

    Entries for the 3000 initial orders per district are computed on
    demand (never cached — iteration and ``dict(...)`` copies only see
    explicitly stored entries, i.e. orders the run itself created or
    delivered).  Indexes past the initial block that were never stored
    raise ``KeyError`` exactly like a plain dict.
    """

    def __init__(self, scale: TpccScale, seed: int) -> None:
        super().__init__()
        self._scale = scale
        self._seed = seed

    def __missing__(self, order_index: int) -> Tuple[int, int, bool]:
        opd = self._scale.orders_per_district
        district_index, o_off = divmod(order_index, opd)
        if (o_off >= INITIAL_ORDERS_PER_DISTRICT or order_index < 0
                or district_index >= self._scale.districts):
            raise KeyError(order_index)
        o = o_off + 1
        c = (o_off * _PERM_MULT
             + _district_offset(self._seed, district_index)) \
            % CUSTOMERS_PER_DISTRICT + 1
        ol_cnt = _initial_ol_cnt(self._seed, order_index)
        delivered = o <= (INITIAL_ORDERS_PER_DISTRICT
                          - INITIAL_NEW_ORDERS_PER_DISTRICT)
        return (c, ol_cnt, delivered)

    def get(self, key, default=None):  # type: ignore[override]
        """Like ``dict.get`` but consulting the lazy initial orders."""
        try:
            return self[key]
        except KeyError:
            return default


class _LazyLastOrder(Dict[int, int]):
    """customer global index -> most recent order id in its district.

    The affine permutation is inverted in O(1): absent an explicit
    store (a New-Order during the run), a customer's last order is its
    unique initial order.
    """

    def __init__(self, scale: TpccScale, seed: int) -> None:
        super().__init__()
        self._scale = scale
        self._seed = seed

    def __missing__(self, customer_index: int) -> int:
        district_index, c_off = divmod(customer_index,
                                       CUSTOMERS_PER_DISTRICT)
        if (customer_index < 0
                or district_index >= self._scale.districts):
            raise KeyError(customer_index)
        offset = _district_offset(self._seed, district_index)
        return (c_off - offset) * _PERM_INV % CUSTOMERS_PER_DISTRICT + 1

    def get(self, key, default=None):  # type: ignore[override]
        try:
            return self[key]
        except KeyError:
            return default

    def __contains__(self, key: object) -> bool:
        if dict.__contains__(self, key):
            return True
        try:
            self[key]  # type: ignore[index]
            return True
        except (KeyError, TypeError):
            return False


class TpccDatabase:
    """Tables plus in-memory domain state for a TPC-C database."""

    def __init__(
        self,
        engine: TransactionEngine,
        scale: TpccScale,
        rnd: TpccRandom | None = None,
    ) -> None:
        self.engine = engine
        self.scale = scale
        self.rnd = rnd or TpccRandom(0)

        # Physical schema.  Small hot tables plus the order pipeline sit
        # on disk A; the big read-mostly tables on disk B.
        self.warehouse = self._create("warehouse", scale.warehouses,
                                      TABLE_DISK_A)
        self.district = self._create("district", scale.districts,
                                     TABLE_DISK_A)
        self.customer = self._create("customer", scale.customers,
                                     TABLE_DISK_A)
        self.history = self._create("history", scale.history_rows,
                                    TABLE_DISK_A)
        self.order = self._create("order", scale.order_rows, TABLE_DISK_A)
        self.new_order = self._create("new_order", scale.order_rows,
                                      TABLE_DISK_A)
        self.item = self._create("item", ITEMS, TABLE_DISK_B)
        self.stock = self._create("stock", scale.stock_rows, TABLE_DISK_B)
        self.order_line = self._create("order_line", scale.order_line_rows,
                                       TABLE_DISK_B)

        # Domain state (populated by load()).
        self.next_o_id: List[int] = []
        self.undelivered: List[Deque[int]] = []
        self.stock_quantity = array("i")
        self.stock_ytd = array("i")
        self.customer_balance = array("d")
        self.warehouse_ytd = array("d")
        self.district_ytd = array("d")
        #: order global index -> (customer id, ol_cnt, delivered flag).
        self.order_info: Dict[int, Tuple[int, int, bool]] = {}
        #: customer global index -> most recent order id in its district.
        self.last_order_of: Dict[int, int] = {}
        self.history_next = 0
        self.loaded = False

    def _create(self, name: str, rows: int, disk_id: int) -> Table:
        return self.engine.create_table(TableSpec(
            name=name, record_bytes=RECORD_BYTES[name],
            max_rows=rows, disk_id=disk_id))

    # ------------------------------------------------------------------

    def load(self) -> None:
        """Populate domain state per the clause 4.3 rules (offline)."""
        scale = self.scale
        self.stock_quantity = array(
            "i", self.rnd.uniform_many(10, 100, scale.stock_rows))
        self.stock_ytd = array("i", [0]) * scale.stock_rows
        self.customer_balance = array("d", [-10.0]) * scale.customers
        self.warehouse_ytd = array("d", [300_000.0]) * scale.warehouses
        self.district_ytd = array("d", [30_000.0]) * scale.districts

        self.next_o_id = [INITIAL_ORDERS_PER_DISTRICT + 1] * scale.districts
        # The most recent 900 orders per district are undelivered,
        # oldest first (clause 4.3.3.1).
        first_undelivered = (INITIAL_ORDERS_PER_DISTRICT
                             - INITIAL_NEW_ORDERS_PER_DISTRICT + 1)
        self.undelivered = [
            deque(range(first_undelivered, INITIAL_ORDERS_PER_DISTRICT + 1))
            for _ in range(scale.districts)
        ]
        # Initial order metadata is computed on first touch: the
        # permutation assigning customers to the 3000 initial orders of
        # each district is affine (and inverted for last_order_of), so
        # nothing about the 30,000-orders-per-warehouse block needs to
        # be materialized here.
        seed = self.rnd.seed
        self.order_info = _LazyOrderInfo(scale, seed)
        self.last_order_of = _LazyLastOrder(scale, seed)
        self.history_next = scale.customers  # one history row per customer
        self.loaded = True

    # ------------------------------------------------------------------

    def warm_cache(self) -> int:
        """Preload the hottest pages into the buffer pool (LRU-coldest
        first so the pool evicts the right things under pressure).

        Returns the number of pages made resident.  Each plan entry is
        a contiguous record range, so it maps to one contiguous page
        extent — the pool walks pages, not records.
        """
        pool = self.engine.pool
        loaded = 0
        # Cold-ish first: order pipeline around the current tail, then
        # item/stock/customer, then the tiny hot tables last (most
        # recently used, least likely to be evicted).
        plan: List[Tuple[Table, int, int]] = []
        scale = self.scale
        for w in range(1, scale.warehouses + 1):
            for d in range(1, DISTRICTS_PER_WAREHOUSE + 1):
                tail = self.next_o_id[scale.district_index(w, d)]
                low = max(1, tail - 1000)
                high = min(tail, scale.orders_per_district)
                plan.append((self.order_line,
                             scale.order_line_index(w, d, low, 1),
                             scale.order_line_index(w, d, high, 1)))
                plan.append((self.order,
                             scale.order_index(w, d, low),
                             scale.order_index(w, d, high)))
        plan.append((self.item, 0, ITEMS - 1))
        plan.append((self.stock, 0, scale.stock_rows - 1))
        plan.append((self.customer, 0, scale.customers - 1))
        plan.append((self.district, 0, scale.districts - 1))
        plan.append((self.warehouse, 0, scale.warehouses - 1))

        for table, first_index, last_index in plan:
            if last_index < first_index:
                continue
            first_lba = table.page_of(first_index)
            last_lba = table.page_of(last_index)
            page_count = (last_lba - first_lba) // table.page_sectors + 1
            loaded += pool.preload_extent(table.disk_id, first_lba,
                                          page_count)
        return loaded
