"""TPC-C database construction (clause 4.3 population rules).

``TpccDatabase`` owns both the *physical* schema — nine engine tables
placed on the two table disks, as in the paper's setup — and the
compact *domain state* the transactions need (stock quantities, next
order ids, undelivered-order queues, order metadata).  Population is an
offline step, like the paper's pre-built database; the optional cache
warm-up stands in for its 200,000 warm-up transactions.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.db.engine import Table, TableSpec, TransactionEngine
from repro.tpcc.random_gen import TpccRandom
from repro.tpcc.schema import (
    CUSTOMERS_PER_DISTRICT, DISTRICTS_PER_WAREHOUSE,
    INITIAL_NEW_ORDERS_PER_DISTRICT, INITIAL_ORDERS_PER_DISTRICT, ITEMS,
    RECORD_BYTES, TpccScale)

#: Data-disk ids used by the paper's layout: disk 0 is dedicated to the
#: database log, tables live on disks 1 and 2.
LOG_DISK = 0
TABLE_DISK_A = 1
TABLE_DISK_B = 2


class TpccDatabase:
    """Tables plus in-memory domain state for a TPC-C database."""

    def __init__(
        self,
        engine: TransactionEngine,
        scale: TpccScale,
        rnd: Optional[TpccRandom] = None,
    ) -> None:
        self.engine = engine
        self.scale = scale
        self.rnd = rnd or TpccRandom(0)

        # Physical schema.  Small hot tables plus the order pipeline sit
        # on disk A; the big read-mostly tables on disk B.
        self.warehouse = self._create("warehouse", scale.warehouses,
                                      TABLE_DISK_A)
        self.district = self._create("district", scale.districts,
                                     TABLE_DISK_A)
        self.customer = self._create("customer", scale.customers,
                                     TABLE_DISK_A)
        self.history = self._create("history", scale.history_rows,
                                    TABLE_DISK_A)
        self.order = self._create("order", scale.order_rows, TABLE_DISK_A)
        self.new_order = self._create("new_order", scale.order_rows,
                                      TABLE_DISK_A)
        self.item = self._create("item", ITEMS, TABLE_DISK_B)
        self.stock = self._create("stock", scale.stock_rows, TABLE_DISK_B)
        self.order_line = self._create("order_line", scale.order_line_rows,
                                       TABLE_DISK_B)

        # Domain state (populated by load()).
        self.next_o_id: List[int] = []
        self.undelivered: List[Deque[int]] = []
        self.stock_quantity = array("i")
        self.stock_ytd = array("i")
        self.customer_balance = array("d")
        self.warehouse_ytd = array("d")
        self.district_ytd = array("d")
        #: order global index -> (customer id, ol_cnt, delivered flag).
        self.order_info: Dict[int, Tuple[int, int, bool]] = {}
        #: customer global index -> most recent order id in its district.
        self.last_order_of: Dict[int, int] = {}
        self.history_next = 0
        self.loaded = False

    def _create(self, name: str, rows: int, disk_id: int) -> Table:
        return self.engine.create_table(TableSpec(
            name=name, record_bytes=RECORD_BYTES[name],
            max_rows=rows, disk_id=disk_id))

    # ------------------------------------------------------------------

    def load(self) -> None:
        """Populate domain state per the clause 4.3 rules (offline)."""
        scale = self.scale
        self.stock_quantity = array(
            "i", (self.rnd.uniform(10, 100) for _ in range(scale.stock_rows)))
        self.stock_ytd = array("i", [0]) * scale.stock_rows
        self.customer_balance = array("d", [-10.0]) * scale.customers
        self.warehouse_ytd = array("d", [300_000.0]) * scale.warehouses
        self.district_ytd = array("d", [30_000.0]) * scale.districts

        self.next_o_id = [INITIAL_ORDERS_PER_DISTRICT + 1] * scale.districts
        self.undelivered = [deque() for _ in range(scale.districts)]
        for w in range(1, scale.warehouses + 1):
            for d in range(1, DISTRICTS_PER_WAREHOUSE + 1):
                district_index = scale.district_index(w, d)
                # Initial orders are assigned customers by permutation.
                customers = list(range(1, CUSTOMERS_PER_DISTRICT + 1))
                self.rnd.shuffle(customers)
                for o in range(1, INITIAL_ORDERS_PER_DISTRICT + 1):
                    c = customers[(o - 1) % CUSTOMERS_PER_DISTRICT]
                    ol_cnt = self.rnd.order_line_count()
                    delivered = o <= (INITIAL_ORDERS_PER_DISTRICT
                                      - INITIAL_NEW_ORDERS_PER_DISTRICT)
                    order_index = scale.order_index(w, d, o)
                    self.order_info[order_index] = (c, ol_cnt, delivered)
                    self.last_order_of[scale.customer_index(w, d, c)] = o
                    if not delivered:
                        self.undelivered[district_index].append(o)
        self.history_next = scale.customers  # one history row per customer
        self.loaded = True

    # ------------------------------------------------------------------

    def warm_cache(self) -> int:
        """Preload the hottest pages into the buffer pool (LRU-coldest
        first so the pool evicts the right things under pressure).

        Returns the number of pages made resident.
        """
        pool = self.engine.pool
        loaded = 0
        # Cold-ish first: order pipeline around the current tail, then
        # item/stock/customer, then the tiny hot tables last (most
        # recently used, least likely to be evicted).
        plan: List[Tuple[Table, range]] = []
        scale = self.scale
        for w in range(1, scale.warehouses + 1):
            for d in range(1, DISTRICTS_PER_WAREHOUSE + 1):
                tail = self.next_o_id[scale.district_index(w, d)]
                low = max(1, tail - 1000)
                plan.append((self.order_line, range(
                    scale.order_line_index(w, d, low, 1),
                    scale.order_line_index(
                        w, d, min(tail, scale.orders_per_district),
                        1) + 1)))
                plan.append((self.order, range(
                    scale.order_index(w, d, low),
                    scale.order_index(
                        w, d, min(tail, scale.orders_per_district)) + 1)))
        plan.append((self.item, range(0, ITEMS)))
        plan.append((self.stock, range(0, scale.stock_rows)))
        plan.append((self.customer, range(0, scale.customers)))
        plan.append((self.district, range(0, scale.districts)))
        plan.append((self.warehouse, range(0, scale.warehouses)))

        for table, indexes in plan:
            seen_pages = set()
            for index in indexes:
                lba = table.page_of(index)
                if lba in seen_pages:
                    continue
                seen_pages.add(lba)
                if pool.preload(table.disk_id, lba):
                    loaded += 1
        return loaded
