"""TPC-C schema constants: tables, cardinalities, and record sizes.

Record sizes follow the spec's minimum row sizes (clause 4.2), which is
what determines the page I/O and log volume the benchmark generates.
Growing tables (ORDER, ORDER-LINE, NEW-ORDER, HISTORY) are provisioned
with headroom so a multi-thousand-transaction run never outgrows its
extent.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

#: Districts per warehouse (clause 1.2.1).
DISTRICTS_PER_WAREHOUSE = 10
#: Customers per district.
CUSTOMERS_PER_DISTRICT = 3000
#: Items in the catalogue.
ITEMS = 100_000
#: Stock rows per warehouse (one per item).
STOCK_PER_WAREHOUSE = ITEMS
#: Initially loaded orders per district.
INITIAL_ORDERS_PER_DISTRICT = 3000
#: Of which the most recent 900 are undelivered (NEW-ORDER rows).
INITIAL_NEW_ORDERS_PER_DISTRICT = 900
#: Maximum order lines per order.
MAX_ORDER_LINES = 15

#: Minimum row sizes in bytes (clause 4.2.2).
# trailiso: shared_immutable -- spec constants, frozen at import
RECORD_BYTES: Mapping[str, int] = MappingProxyType({
    "warehouse": 89,
    "district": 95,
    "customer": 655,
    "history": 46,
    "new_order": 8,
    "order": 24,
    "order_line": 54,
    "item": 82,
    "stock": 306,
})

#: Transaction mix (clause 5.2.3's minimums, as deployed in practice).
TRANSACTION_MIX = (
    ("new_order", 45.0),
    ("payment", 43.0),
    ("order_status", 4.0),
    ("delivery", 4.0),
    ("stock_level", 4.0),
)


@dataclass(frozen=True)
class TpccScale:
    """Cardinalities for a database of ``warehouses`` warehouses."""

    warehouses: int
    #: Extra order slots per district beyond the initial 3000, sized for
    #: the longest run the harness will drive.
    order_headroom_per_district: int = 4000
    #: Extra HISTORY rows beyond the initial one per customer.
    history_headroom: int = 40_000

    def __post_init__(self) -> None:
        if self.warehouses < 1:
            raise ValueError(
                f"warehouses must be >= 1, got {self.warehouses}")

    @property
    def districts(self) -> int:
        return self.warehouses * DISTRICTS_PER_WAREHOUSE

    @property
    def customers(self) -> int:
        return self.districts * CUSTOMERS_PER_DISTRICT

    @property
    def stock_rows(self) -> int:
        return self.warehouses * STOCK_PER_WAREHOUSE

    @property
    def orders_per_district(self) -> int:
        return INITIAL_ORDERS_PER_DISTRICT + self.order_headroom_per_district

    @property
    def order_rows(self) -> int:
        return self.districts * self.orders_per_district

    @property
    def order_line_rows(self) -> int:
        return self.order_rows * MAX_ORDER_LINES

    @property
    def history_rows(self) -> int:
        return self.customers + self.history_headroom

    def database_bytes(self) -> int:
        """Initial database size (the paper quotes >0.5 GB for w=1
        including access-structure overheads)."""
        return (
            self.warehouses * RECORD_BYTES["warehouse"]
            + self.districts * RECORD_BYTES["district"]
            + self.customers * RECORD_BYTES["customer"]
            + self.customers * RECORD_BYTES["history"]
            + ITEMS * RECORD_BYTES["item"]
            + self.stock_rows * RECORD_BYTES["stock"]
            + self.districts * INITIAL_ORDERS_PER_DISTRICT
            * (RECORD_BYTES["order"] + 10 * RECORD_BYTES["order_line"])
        )

    # ------------------------------------------------------------------
    # Record-index mapping (dense, zero-based) used for page placement

    def warehouse_index(self, w: int) -> int:
        self._check(1 <= w <= self.warehouses, "warehouse", w)
        return w - 1

    def district_index(self, w: int, d: int) -> int:
        self._check(1 <= d <= DISTRICTS_PER_WAREHOUSE, "district", d)
        return self.warehouse_index(w) * DISTRICTS_PER_WAREHOUSE + d - 1

    def customer_index(self, w: int, d: int, c: int) -> int:
        self._check(1 <= c <= CUSTOMERS_PER_DISTRICT, "customer", c)
        return (self.district_index(w, d) * CUSTOMERS_PER_DISTRICT
                + c - 1)

    def item_index(self, i: int) -> int:
        self._check(1 <= i <= ITEMS, "item", i)
        return i - 1

    def stock_index(self, w: int, i: int) -> int:
        return self.warehouse_index(w) * STOCK_PER_WAREHOUSE \
            + self.item_index(i)

    def order_index(self, w: int, d: int, o: int) -> int:
        self._check(1 <= o <= self.orders_per_district, "order", o)
        return (self.district_index(w, d) * self.orders_per_district
                + o - 1)

    def order_line_index(self, w: int, d: int, o: int, ol: int) -> int:
        self._check(1 <= ol <= MAX_ORDER_LINES, "order line", ol)
        return self.order_index(w, d, o) * MAX_ORDER_LINES + ol - 1

    @staticmethod
    def _check(condition: bool, what: str, value: int) -> None:
        if not condition:
            raise ValueError(f"{what} id {value} out of range")
