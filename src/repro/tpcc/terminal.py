"""TPC-C terminal processes.

Each terminal drives transactions back-to-back (the paper uses no think
time — "the CPU time each transaction requires is much smaller than
the disk I/O delay").  Terminals share a global countdown so a run
executes exactly N transactions regardless of concurrency, matching
"a sequence of 5000 transactions when the degree of concurrency is 1"
and the 10,000-transaction concurrency-4 runs.

A terminal proceeds to its next transaction as soon as the current
one's *work* completes; whether that point includes durability depends
on the commit policy (sync policies block in commit, group commit does
not).  Response time is recorded separately at the durability event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.db.engine import TransactionEngine
from repro.errors import DeadlockError, IntentionalRollback
from repro.sim import Simulation
from repro.tpcc.loader import TpccDatabase
from repro.tpcc.metrics import TpccMetrics
from repro.tpcc.random_gen import TpccRandom
from repro.tpcc.transactions import TpccTransactions


@dataclass
class _SharedCountdown:
    """Remaining transactions across all terminals."""

    remaining: int

    def take(self) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


class Terminal:
    """One emulated terminal bound to a home warehouse."""

    def __init__(
        self,
        sim: Simulation,
        engine: TransactionEngine,
        transactions: TpccTransactions,
        metrics: TpccMetrics,
        countdown: _SharedCountdown,
        home_warehouse: int,
        think_time_ms: float = 0.0,
    ) -> None:
        self.sim = sim
        self.engine = engine
        self.transactions = transactions
        self.metrics = metrics
        self.countdown = countdown
        self.home_warehouse = home_warehouse
        self.think_time_ms = think_time_ms

    def run(self) -> Generator:
        """Drive transactions until the shared countdown is exhausted."""
        while self.countdown.take():
            tx_type = self.transactions.choose_type()
            body = self.transactions.make(tx_type, self.home_warehouse)
            started = self.sim.now
            try:
                durable, _attempts = yield from self.engine.run_transaction(
                    body)
            except IntentionalRollback:
                self.metrics.record_rollback()
                continue
            except DeadlockError:
                self.metrics.record_deadlock_failure()
                continue
            self.metrics.record_work(tx_type, started)
            self.metrics.track_response(started, durable)
            if self.think_time_ms > 0:
                yield self.sim.timeout(self.think_time_ms)


def launch_terminals(
    sim: Simulation,
    engine: TransactionEngine,
    db: TpccDatabase,
    metrics: TpccMetrics,
    total_transactions: int,
    concurrency: int,
    rnd: TpccRandom,
    think_time_ms: float = 0.0,
):
    """Start ``concurrency`` terminals sharing ``total_transactions``.

    Returns the list of terminal processes; wait on all of them (e.g.
    ``yield sim.all_of(processes)``) to detect run completion.
    """
    countdown = _SharedCountdown(total_transactions)
    transactions = TpccTransactions(engine, db, rnd)
    processes = []
    for index in range(concurrency):
        home = 1 + index % db.scale.warehouses
        terminal = Terminal(sim, engine, transactions, metrics, countdown,
                            home_warehouse=home,
                            think_time_ms=think_time_ms)
        processes.append(sim.process(terminal.run(),
                                     name=f"terminal-{index}"))
    return processes
