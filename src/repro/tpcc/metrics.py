"""TPC-C measurement plumbing.

The paper's Table 2 reports three numbers per storage system — average
response time, logging disk-I/O time, and throughput in "tpmC" — for a
fixed count of transactions.  Its tpmC counts *all* transactions per
minute (616 tpmC at a 0.097 s response time is exactly 60/0.097), so we
report that as ``tpmc`` and the strict new-order-only rate as
``tpmc_new_order``.

Response time is measured to the *durability point*: under group commit
a transaction's work finishes early but its response is only complete
when the covering flush reaches the disk — which is why the paper's
EXT2+GC shows 0.90 s responses despite decent throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.sim import Event, LatencyRecorder, Simulation
from repro.units import to_seconds


@dataclass
class TpccMetrics:
    """Accumulates transaction outcomes for one run."""

    sim: Simulation
    started_at: float = 0.0
    finished_at: float = 0.0
    completed: int = 0
    rolled_back: int = 0
    deadlock_failures: int = 0
    by_type: Dict[str, int] = field(default_factory=dict)
    response: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder(keep_samples=True))
    #: Time from start to end of the transaction's *work* (locks held).
    work_time: LatencyRecorder = field(default_factory=LatencyRecorder)

    def begin_run(self) -> None:
        """Mark the start of the measured interval."""
        self.started_at = self.sim.now

    def end_run(self) -> None:
        """Mark the end of the measured interval."""
        self.finished_at = self.sim.now

    # ------------------------------------------------------------------

    def record_work(self, tx_type: str, started: float) -> None:
        """A transaction finished its work phase (locks released)."""
        self.completed += 1
        self.by_type[tx_type] = self.by_type.get(tx_type, 0) + 1
        self.work_time.record(self.sim.now - started)

    def track_response(self, started: float, durable: Event) -> None:
        """Record response time when ``durable`` fires (maybe already)."""
        durable.add_callback(
            lambda _evt: self.response.record(self.sim.now - started))

    def record_rollback(self) -> None:
        """An intentional (spec-mandated) rollback completed."""
        self.rolled_back += 1

    def record_deadlock_failure(self) -> None:
        """A transaction exhausted its deadlock retries."""
        self.deadlock_failures += 1

    # ------------------------------------------------------------------
    # Summary values (paper's units)

    @property
    def makespan_ms(self) -> float:
        return self.finished_at - self.started_at

    @property
    def makespan_s(self) -> float:
        return to_seconds(self.makespan_ms)

    @property
    def tpmc(self) -> float:
        """All committed transactions per minute (the paper's metric)."""
        if self.makespan_ms <= 0:
            return 0.0
        return self.completed / (self.makespan_ms / 60_000.0)

    @property
    def tpmc_new_order(self) -> float:
        """Strict tpmC: committed New-Order transactions per minute."""
        if self.makespan_ms <= 0:
            return 0.0
        return (self.by_type.get("new_order", 0)
                / (self.makespan_ms / 60_000.0))

    @property
    def avg_response_s(self) -> float:
        """Mean response time (to durability) in seconds."""
        if self.response.count == 0:
            return 0.0
        return to_seconds(self.response.mean)

    @property
    def abort_rate(self) -> float:
        """Intentional rollbacks plus failures over all attempts."""
        attempts = self.completed + self.rolled_back + self.deadlock_failures
        if attempts == 0:
            return 0.0
        return (self.rolled_back + self.deadlock_failures) / attempts
