"""TPC-C workload substrate (schema, population, transactions, harness)."""

from repro.tpcc.loader import (
    LOG_DISK, TABLE_DISK_A, TABLE_DISK_B, TpccDatabase)
from repro.tpcc.metrics import TpccMetrics
from repro.tpcc.random_gen import TpccRandom, last_name
from repro.tpcc.run import (
    SYSTEMS, TpccRunConfig, TpccRunResult, run_tpcc)
from repro.tpcc.schema import (
    CUSTOMERS_PER_DISTRICT, DISTRICTS_PER_WAREHOUSE, ITEMS,
    MAX_ORDER_LINES, RECORD_BYTES, TRANSACTION_MIX, TpccScale)
from repro.tpcc.terminal import Terminal, launch_terminals
from repro.tpcc.transactions import TpccTransactions

__all__ = [
    "CUSTOMERS_PER_DISTRICT",
    "DISTRICTS_PER_WAREHOUSE",
    "ITEMS",
    "LOG_DISK",
    "MAX_ORDER_LINES",
    "RECORD_BYTES",
    "SYSTEMS",
    "TABLE_DISK_A",
    "TABLE_DISK_B",
    "TRANSACTION_MIX",
    "Terminal",
    "TpccDatabase",
    "TpccMetrics",
    "TpccRandom",
    "TpccRunConfig",
    "TpccRunResult",
    "TpccScale",
    "TpccTransactions",
    "launch_terminals",
    "last_name",
    "run_tpcc",
]
