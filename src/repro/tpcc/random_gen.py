"""TPC-C input generation rules (clause 2.1.6 and 4.3 of the spec).

Implements NURand (non-uniform random), the syllable-based customer
last names, and the per-transaction-type input distributions the
benchmark requires.  Everything is seeded, so runs are reproducible.
"""

from __future__ import annotations

import random
from typing import List, Tuple

#: The ten syllables used to build customer last names (clause 4.3.2.3).
_NAME_SYLLABLES = (
    "BAR", "OUGHT", "ABLE", "PRI", "PRES",
    "ESE", "ANTI", "CALLY", "ATION", "EING",
)


def last_name(number: int) -> str:
    """Customer last name for ``number`` in [0, 999]."""
    if not 0 <= number <= 999:
        raise ValueError(f"name number must be in [0, 999], got {number}")
    return (_NAME_SYLLABLES[number // 100]
            + _NAME_SYLLABLES[(number // 10) % 10]
            + _NAME_SYLLABLES[number % 10])


class TpccRandom:
    """Seeded random source implementing the TPC-C distributions."""

    #: NURand constants fixed at database build time (clause 2.1.6.1).
    C_LAST = 123
    C_CUST_ID = 259
    C_ITEM_ID = 987

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        #: Bound method cached for the hot draws below: every uniform
        #: draw costs one C-level ``random()`` call instead of the
        #: layered ``randint`` -> ``randrange`` -> ``getrandbits`` path.
        self._random = self._rng.random

    def uniform(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        # random() < 1.0 strictly, so the scaled draw stays < span for
        # any span far below 2**53 (TPC-C spans top out at 100,000).
        return low + int(self._random() * (high - low + 1))

    def uniform_many(self, low: int, high: int, count: int) -> List[int]:
        """``count`` uniform integers in [low, high] (bulk population).

        When the whole range fits in a byte the draw runs at C speed:
        seeded ``randbytes`` filtered by rejection sampling (bytes at or
        above the largest multiple of the span are discarded, keeping
        the distribution exactly uniform) and mapped through a
        translation table.  Larger ranges fall back to scaled
        ``random()`` draws.
        """
        span = high - low + 1
        if 0 <= low and high <= 0xFF and count >= 64:
            limit = span * (0x100 // span)
            table = bytes(low + byte % span if byte < limit else 0
                          for byte in range(0x100))
            reject = bytes(range(limit, 0x100))
            randbytes = self._rng.randbytes
            values = bytearray()
            while len(values) < count:
                need = count - len(values)
                # Oversample for the expected rejection rate so one
                # round usually suffices.
                raw = randbytes(need + (need * (0x100 - limit) >> 8) + 32)
                values += raw.translate(table, reject)
            return list(values[:count])
        r = self._random
        return [low + int(r() * span) for _ in range(count)]

    def decimal(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def chance(self, percent: float) -> bool:
        """True with the given percent probability."""
        return self._rng.random() * 100.0 < percent

    def nurand(self, a: int, low: int, high: int, c: int) -> int:
        """The spec's NURand(A, x, y) skewed distribution."""
        return ((((self.uniform(0, a) | self.uniform(low, high)) + c)
                 % (high - low + 1)) + low)

    # ------------------------------------------------------------------
    # Domain-specific draws

    def item_id(self, items: int = 100_000) -> int:
        """Skewed item id in [1, items] (clause 2.4.1.5)."""
        return self.nurand(8191, 1, items, self.C_ITEM_ID)

    def customer_id(self, customers: int = 3000) -> int:
        """Skewed customer id in [1, customers] (clause 2.4.1.5)."""
        return self.nurand(1023, 1, customers, self.C_CUST_ID)

    def customer_last_name(self) -> str:
        """A last name drawn with the NURand(255) rule."""
        return last_name(self.nurand(255, 0, 999, self.C_LAST))

    def district_id(self, districts: int = 10) -> int:
        """Uniform district id in [1, districts]."""
        return self.uniform(1, districts)

    def order_line_count(self) -> int:
        """ol_cnt for New-Order: uniform in [5, 15] (clause 2.4.1.3)."""
        return self.uniform(5, 15)

    def quantity(self) -> int:
        """Order-line quantity: uniform in [1, 10]."""
        return self.uniform(1, 10)

    def remote_warehouse(self, home: int, warehouses: int) -> Tuple[int, bool]:
        """Supplying warehouse for an order line (1% remote when w > 1)."""
        if warehouses > 1 and self.chance(1.0):
            other = self.uniform(1, warehouses - 1)
            if other >= home:
                other += 1
            return other, True
        return home, False

    def payment_amount(self) -> float:
        """Payment amount: uniform in [1.00, 5000.00]."""
        return self.decimal(1.0, 5000.0)

    def by_last_name(self) -> bool:
        """Payment/Order-Status select customer by last name 60% of the
        time (clause 2.5.1.2)."""
        return self.chance(60.0)

    def invalid_item(self) -> bool:
        """1% of New-Order transactions roll back on an unused item id
        (clause 2.4.1.5)."""
        return self.chance(1.0)

    def threshold(self) -> int:
        """Stock-Level threshold: uniform in [10, 20]."""
        return self.uniform(10, 20)

    def shuffle(self, items: List) -> None:
        """In-place shuffle with this generator's state."""
        self._rng.shuffle(items)
