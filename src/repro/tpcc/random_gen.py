"""TPC-C input generation rules (clause 2.1.6 and 4.3 of the spec).

Implements NURand (non-uniform random), the syllable-based customer
last names, and the per-transaction-type input distributions the
benchmark requires.  Everything is seeded, so runs are reproducible.
"""

from __future__ import annotations

import random
from typing import List, Tuple

#: The ten syllables used to build customer last names (clause 4.3.2.3).
_NAME_SYLLABLES = (
    "BAR", "OUGHT", "ABLE", "PRI", "PRES",
    "ESE", "ANTI", "CALLY", "ATION", "EING",
)


def last_name(number: int) -> str:
    """Customer last name for ``number`` in [0, 999]."""
    if not 0 <= number <= 999:
        raise ValueError(f"name number must be in [0, 999], got {number}")
    return (_NAME_SYLLABLES[number // 100]
            + _NAME_SYLLABLES[(number // 10) % 10]
            + _NAME_SYLLABLES[number % 10])


class TpccRandom:
    """Seeded random source implementing the TPC-C distributions."""

    #: NURand constants fixed at database build time (clause 2.1.6.1).
    C_LAST = 123
    C_CUST_ID = 259
    C_ITEM_ID = 987

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def uniform(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def decimal(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def chance(self, percent: float) -> bool:
        """True with the given percent probability."""
        return self._rng.random() * 100.0 < percent

    def nurand(self, a: int, low: int, high: int, c: int) -> int:
        """The spec's NURand(A, x, y) skewed distribution."""
        return ((((self.uniform(0, a) | self.uniform(low, high)) + c)
                 % (high - low + 1)) + low)

    # ------------------------------------------------------------------
    # Domain-specific draws

    def item_id(self, items: int = 100_000) -> int:
        """Skewed item id in [1, items] (clause 2.4.1.5)."""
        return self.nurand(8191, 1, items, self.C_ITEM_ID)

    def customer_id(self, customers: int = 3000) -> int:
        """Skewed customer id in [1, customers] (clause 2.4.1.5)."""
        return self.nurand(1023, 1, customers, self.C_CUST_ID)

    def customer_last_name(self) -> str:
        """A last name drawn with the NURand(255) rule."""
        return last_name(self.nurand(255, 0, 999, self.C_LAST))

    def district_id(self, districts: int = 10) -> int:
        """Uniform district id in [1, districts]."""
        return self.uniform(1, districts)

    def order_line_count(self) -> int:
        """ol_cnt for New-Order: uniform in [5, 15] (clause 2.4.1.3)."""
        return self.uniform(5, 15)

    def quantity(self) -> int:
        """Order-line quantity: uniform in [1, 10]."""
        return self.uniform(1, 10)

    def remote_warehouse(self, home: int, warehouses: int) -> Tuple[int, bool]:
        """Supplying warehouse for an order line (1% remote when w > 1)."""
        if warehouses > 1 and self.chance(1.0):
            other = self.uniform(1, warehouses - 1)
            if other >= home:
                other += 1
            return other, True
        return home, False

    def payment_amount(self) -> float:
        """Payment amount: uniform in [1.00, 5000.00]."""
        return self.decimal(1.0, 5000.0)

    def by_last_name(self) -> bool:
        """Payment/Order-Status select customer by last name 60% of the
        time (clause 2.5.1.2)."""
        return self.chance(60.0)

    def invalid_item(self) -> bool:
        """1% of New-Order transactions roll back on an unused item id
        (clause 2.4.1.5)."""
        return self.chance(1.0)

    def threshold(self) -> int:
        """Stock-Level threshold: uniform in [10, 20]."""
        return self.uniform(10, 20)

    def shuffle(self, items: List) -> None:
        """In-place shuffle with this generator's state."""
        self._rng.shuffle(items)
