"""One-call TPC-C harness: build a storage system, run transactions.

Reproduces the paper's §5.2 setup: a dedicated database-log disk plus
two table disks; under Trail those sit behind a
:class:`~repro.core.driver.TrailDriver` with its own ST41601N log disk,
under "EXT2"/"EXT2+GC" behind the standard driver.  The three systems
in Table 2 differ only in the ``system`` field here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.baselines.group_commit import GroupCommitPolicy, SyncCommitPolicy
from repro.baselines.standard import StandardDriver
from repro.core.config import TrailConfig
from repro.core.driver import TrailDriver
from repro.core.instance import TrailInstance
from repro.db.engine import TransactionEngine
from repro.db.locks import LockManager
from repro.db.pages import BufferPool
from repro.db.wal import WriteAheadLog
from repro.disk.presets import st41601n, wd_caviar_10gb
from repro.errors import WorkloadError
from repro.sim import Simulation
from repro.tpcc.loader import LOG_DISK, TpccDatabase
from repro.tpcc.metrics import TpccMetrics
from repro.tpcc.random_gen import TpccRandom
from repro.tpcc.schema import TpccScale
from repro.tpcc.terminal import launch_terminals
from repro.units import KiB, MiB, to_seconds

#: The storage systems of Table 2.
SYSTEMS = ("trail", "ext2", "ext2+gc")


@dataclass
class TpccRunConfig:
    """Parameters of one TPC-C run."""

    system: str = "trail"
    transactions: int = 1000
    concurrency: int = 1
    warehouses: int = 1
    #: Group-commit criterion (only used by "ext2+gc"); 50 KB in Table 2.
    log_buffer_kb: int = 50
    seed: int = 0
    #: Per-record-access CPU cost.  0.3 ms/op matches the paper's
    #: Pentium II-era regime where ~10-20 transactions/s leave the
    #: shared Trail log disk far from saturation.
    cpu_ms_per_op: float = 0.3
    #: Buffer-pool capacity in pages (page = page_sectors * 512 B).
    #: ~37 MB against a ~77 MB w=1 database: the same partially-cached
    #: regime as the paper's 300 MB cache against its >0.5 GB database.
    pool_pages: int = 9000
    page_sectors: int = 8
    warm_cache: bool = True
    think_time_ms: float = 0.0
    wal_capacity_mb: int = 256
    #: Dirty-page flusher cadence (kernel flush-daemon analogue).
    #: Chosen so the Table 2 shape holds: frequent-enough bursts that
    #: foreground reads collide with write-backs on the baseline, small
    #: enough that Trail's shared log disk is not saturated by them.
    flush_interval_ms: float = 100.0
    flush_batch: int = 16

    def __post_init__(self) -> None:
        if self.system not in SYSTEMS:
            raise WorkloadError(
                f"system must be one of {SYSTEMS}, got {self.system!r}")
        if self.transactions < 1:
            raise WorkloadError("transactions must be >= 1")
        if self.concurrency < 1:
            raise WorkloadError("concurrency must be >= 1")


@dataclass
class TpccRunResult:
    """Summary of one run, in the paper's units."""

    system: str
    transactions_completed: int
    tpmc: float
    tpmc_new_order: float
    avg_response_s: float
    logging_io_s: float
    group_commits: int
    abort_rate: float
    makespan_s: float
    pool_hit_ratio: float
    latch_wait_s: float
    by_type: Dict[str, int] = field(default_factory=dict)
    #: Trail-only extras (None on the baselines).
    mean_sync_write_ms: Optional[float] = None
    mean_track_utilization: Optional[float] = None
    #: §5.2's metric: mean record footprint over track capacity,
    #: under the paper's "exactly one batched write per track"
    #: assumption.
    one_batch_per_track_utilization: Optional[float] = None
    repositions: Optional[int] = None
    log_physical_writes: Optional[int] = None


def run_tpcc(config: TpccRunConfig) -> TpccRunResult:
    """Build the configured system, execute the run, summarize it."""
    sim = Simulation()
    data_disks = {
        disk_id: wd_caviar_10gb().make_drive(sim, f"ide{disk_id}")
        for disk_id in range(3)
    }

    trail_driver: Optional[TrailDriver] = None
    if config.system == "trail":
        # Drive-creation order (data disks above, then the log disk)
        # is part of the golden TPC-C trace; the instance mounts
        # inside run_process below, exactly where the mount always ran.
        instance = TrailInstance(
            sim, st41601n().make_drive(sim, "trail-log"), data_disks,
            TrailConfig(), mount=False)
        trail_driver = instance.driver
        device = trail_driver
        policy = SyncCommitPolicy()
    elif config.system == "ext2":
        device = StandardDriver(sim, data_disks)
        policy = SyncCommitPolicy()
    else:  # ext2+gc
        device = StandardDriver(sim, data_disks)
        policy = GroupCommitPolicy(
            log_buffer_bytes=KiB(config.log_buffer_kb))

    wal = WriteAheadLog(
        sim, device, disk_id=LOG_DISK, start_lba=0,
        capacity_sectors=MiB(config.wal_capacity_mb) // 512,
        policy=policy)
    pool = BufferPool(sim, device, capacity_pages=config.pool_pages,
                      page_sectors=config.page_sectors,
                      flush_interval_ms=config.flush_interval_ms,
                      flush_batch=config.flush_batch)
    engine = TransactionEngine(
        sim, device, wal, pool, LockManager(sim),
        cpu_ms_per_op=config.cpu_ms_per_op)

    rnd = TpccRandom(config.seed)
    db = TpccDatabase(engine, TpccScale(config.warehouses), rnd)
    db.load()
    if config.warm_cache:
        db.warm_cache()

    metrics = TpccMetrics(sim)

    def run_process():
        if trail_driver is not None:
            yield sim.process(trail_driver.mount())
        pool.start()
        metrics.begin_run()
        terminals = launch_terminals(
            sim, engine, db, metrics,
            total_transactions=config.transactions,
            concurrency=config.concurrency,
            rnd=rnd, think_time_ms=config.think_time_ms)
        yield sim.all_of(terminals)
        # Force the trailing buffer so every response event fires.
        yield wal.force()
        metrics.end_run()
        pool.stop()
        if trail_driver is not None:
            yield sim.process(trail_driver.clean_shutdown())

    main = sim.process(run_process(), name="tpcc-run")
    sim.run()
    if not main.triggered:
        raise WorkloadError("TPC-C run did not complete")
    _ = main.value  # re-raise any failure

    result = TpccRunResult(
        system=config.system,
        transactions_completed=metrics.completed,
        tpmc=metrics.tpmc,
        tpmc_new_order=metrics.tpmc_new_order,
        avg_response_s=metrics.avg_response_s,
        logging_io_s=to_seconds(wal.stats.logging_io_ms),
        group_commits=wal.stats.flushes,
        abort_rate=metrics.abort_rate,
        makespan_s=metrics.makespan_s,
        pool_hit_ratio=pool.stats.hit_ratio,
        latch_wait_s=to_seconds(wal.stats.latch_wait_ms),
        by_type=dict(metrics.by_type),
    )
    if trail_driver is not None:
        stats = trail_driver.stats
        if stats.sync_writes.count:
            result.mean_sync_write_ms = stats.sync_writes.mean
        result.mean_track_utilization = \
            trail_driver.allocator.mean_retired_utilization()
        if stats.batch_sizes.count:
            geometry = trail_driver.geometry
            average_spt = geometry.total_sectors / geometry.num_tracks
            result.one_batch_per_track_utilization = \
                (1 + stats.batch_sizes.mean) / average_spt
        result.repositions = stats.repositions
        result.log_physical_writes = stats.physical_log_writes
    return result
