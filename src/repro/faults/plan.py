"""Fault plans and the per-drive injector that executes them.

Determinism contract: every random decision is drawn from a
``random.Random`` seeded with ``(plan.seed, drive name)`` — never from
the wall clock or the global ``random`` module — and decisions are
drawn in the fixed order the drive's service loop consults the
injector.  Because the simulation kernel itself is deterministic, the
same plan attached to the same workload yields an identical fault
sequence and an identical simulation outcome, which is what lets the
crash+fault fuzz harness shrink failures to a single seed.

The injector draws one random number per decision *point* (not per
probability > 0), so two plans with the same seed but different
probabilities still walk the same random stream — raising a
probability flips outcomes without reshuffling unrelated decisions.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from random import Random
from typing import FrozenSet, List, Optional, Set, Tuple


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, seeded description of one fault scenario.

    Probabilities are per *sector attempt* (transient errors) or per
    *command* (grown defects, corruption, latency spikes).  A default
    plan injects nothing; attaching it still exercises the hardened
    code paths without changing behaviour.
    """

    #: Seed for the per-drive random streams.
    seed: int = 0

    #: Sectors that are unrecoverable from the moment of attachment
    #: (manufacturing defects the format pass missed).
    latent_bad_sectors: FrozenSet[int] = frozenset()

    #: Per-attempt probability that reading a sector soft-fails.
    transient_read_error_prob: float = 0.0

    #: Per-attempt probability that writing a sector soft-fails.
    transient_write_error_prob: float = 0.0

    #: Per-write-command probability that one sector of the written
    #: extent becomes a grown defect *after* the command completes.
    grown_defect_prob: float = 0.0

    #: Per-written-sector probability of a silent single-bit flip in
    #: the data as it lands on the platter.  The drive reports success.
    corruption_prob: float = 0.0

    #: Per-command probability of an added service-time spike
    #: (recalibration, thermal retry) of ``latency_spike_ms``.
    latency_spike_prob: float = 0.0

    #: Added latency when a spike fires.
    latency_spike_ms: float = 20.0

    #: Bounded retry budget per sector: how many extra revolutions the
    #: drive spends re-attempting a failed sector before escalating.
    retry_limit: int = 3

    #: Spare sectors available for remapping unrecoverable write
    #: targets.  Reads cannot be remapped.
    spare_sectors: int = 64

    # -- drive-level faults (whole-drive death, not per-sector) --------

    #: Simulated time (ms) at which the whole drive dies cleanly and
    #: permanently (:meth:`~repro.disk.drive.DiskDrive.fail`); ``None``
    #: means the drive never dies.  RAID-level recovery — not a drive
    #: retry — is the only remedy.
    death_at_ms: Optional[float] = None

    #: Simulated time (ms) at which an intermittent (flapping) drive
    #: starts bouncing: ``flap_cycles`` repetitions of dead for
    #: ``flap_down_ms`` then alive for ``flap_up_ms``.  ``None``
    #: disables flapping.
    flap_at_ms: Optional[float] = None

    #: How long each flap's dead phase lasts.
    flap_down_ms: float = 25.0

    #: How long the drive stays up between flaps.
    flap_up_ms: float = 100.0

    #: Number of down/up flap cycles (0 = no flapping even when
    #: ``flap_at_ms`` is set).
    flap_cycles: int = 0

    def __post_init__(self) -> None:
        for name in ("transient_read_error_prob",
                     "transient_write_error_prob", "grown_defect_prob",
                     "corruption_prob", "latency_spike_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.latency_spike_ms < 0:
            raise ValueError("latency_spike_ms must be >= 0")
        if self.retry_limit < 0:
            raise ValueError("retry_limit must be >= 0")
        if self.spare_sectors < 0:
            raise ValueError("spare_sectors must be >= 0")
        if self.death_at_ms is not None and self.death_at_ms < 0:
            raise ValueError("death_at_ms must be >= 0")
        if self.flap_at_ms is not None and self.flap_at_ms < 0:
            raise ValueError("flap_at_ms must be >= 0")
        if self.flap_down_ms <= 0:
            raise ValueError("flap_down_ms must be > 0")
        if self.flap_up_ms <= 0:
            raise ValueError("flap_up_ms must be > 0")
        if self.flap_cycles < 0:
            raise ValueError("flap_cycles must be >= 0")
        if self.flap_cycles > 0 and self.flap_at_ms is None:
            raise ValueError(
                "flap_cycles > 0 requires flap_at_ms to be set")
        object.__setattr__(
            self, "latent_bad_sectors",
            frozenset(self.latent_bad_sectors))


class FaultInjector:
    """Executes a :class:`FaultPlan` for one drive.

    The drive consults the injector at fixed points of its service
    loop; the injector owns the bad-sector set, the spare pool, and an
    audit trail (:attr:`corrupted_sectors`, :attr:`grown_defects`) that
    tests use as a ground-truth oracle.
    """

    __slots__ = ("plan", "drive_name", "_rng", "bad_sectors",
                 "spares_left", "corrupted_sectors", "grown_defects",
                 "remapped_sectors")

    def __init__(self, plan: FaultPlan, drive_name: str = "disk") -> None:
        self.plan = plan
        self.drive_name = drive_name
        # Derive a stable per-drive seed: same plan + same drive name
        # => same stream, independent of attachment order.
        name_digest = zlib.crc32(drive_name.encode("utf-8"))
        self._rng = Random((plan.seed << 32) ^ name_digest)
        self.bad_sectors: Set[int] = set(plan.latent_bad_sectors)
        self.spares_left = plan.spare_sectors
        #: LBAs whose stored contents were silently bit-flipped.
        self.corrupted_sectors: List[int] = []
        #: LBAs that became bad after a successful write (grown defects).
        self.grown_defects: List[int] = []
        #: LBAs remapped to spares (readable/writable again).
        self.remapped_sectors: List[int] = []

    # ------------------------------------------------------------------
    # Per-command decisions (drawn once per disk command)

    def command_spike_ms(self) -> float:
        """Extra service latency for this command (0.0 = no spike)."""
        if self._rng.random() < self.plan.latency_spike_prob:
            return self.plan.latency_spike_ms
        return 0.0

    def grow_defect(self, lba: int, nsectors: int) -> Optional[int]:
        """Maybe turn one sector of a just-written extent into a grown
        defect.  Returns the new bad LBA, or None."""
        if self._rng.random() >= self.plan.grown_defect_prob:
            return None
        victim = lba + self._rng.randrange(nsectors)
        if victim in self.bad_sectors:
            return None
        self.bad_sectors.add(victim)
        self.grown_defects.append(victim)
        return victim

    # ------------------------------------------------------------------
    # Per-sector decisions

    def attempt_fails(self, write: bool) -> bool:
        """One read/write attempt at a (non-bad) sector soft-fails?"""
        prob = (self.plan.transient_write_error_prob if write
                else self.plan.transient_read_error_prob)
        return self._rng.random() < prob

    def corrupt_sector(self, lba: int, data: bytes) -> Tuple[bytes, bool]:
        """Maybe flip one bit of a sector as it lands on the platter.

        Returns ``(data, corrupted)``; the drive stores the returned
        bytes and reports success either way.
        """
        if self._rng.random() >= self.plan.corruption_prob:
            return data, False
        bit = self._rng.randrange(len(data) * 8)
        byte_index, bit_index = divmod(bit, 8)
        flipped = bytearray(data)
        flipped[byte_index] ^= 1 << bit_index
        self.corrupted_sectors.append(lba)
        return bytes(flipped), True

    # ------------------------------------------------------------------
    # Remapping

    def remap(self, lba: int) -> bool:
        """Redirect ``lba`` to a spare sector, if any remain.

        Modelled logically: the controller's remap table makes the
        logical LBA healthy again (reads and writes go to the spare),
        so the injector simply removes it from the bad set and charges
        the spare pool.  Returns False when the pool is exhausted.
        """
        if self.spares_left <= 0:
            return False
        self.spares_left -= 1
        self.bad_sectors.discard(lba)
        self.remapped_sectors.append(lba)
        return True
