"""Drive-level fault execution: whole-drive death and flapping.

Per-sector faults live in the :class:`~repro.faults.FaultInjector`
that the drive consults inside its service loop; drive-*level* faults
(the whole unit dying or bouncing) are instead driven from outside by
a background simulation process, because they must fire at plan time
even when the drive is idle.

The schedule is a pure function of the :class:`~repro.faults.FaultPlan`
(:func:`drive_fault_schedule`) — same plan, same fail/revive edge
sequence, no randomness needed — which keeps the PR 2 determinism
contract: attaching the same plan to the same workload reproduces the
identical simulation outcome.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple, TYPE_CHECKING

from repro.faults.plan import FaultPlan
from repro.sim import Event, Process, Simulation

if TYPE_CHECKING:  # pragma: no cover — circular at runtime: the
    # drive module imports repro.faults.plan, which initializes this
    # package; DiskDrive is needed here only as an annotation.
    from repro.disk.drive import DiskDrive

#: One scheduled drive-level fault edge: (sim time in ms, action),
#: where action is ``"fail"`` or ``"revive"``.
DriveFaultEdge = Tuple[float, str]


def drive_fault_schedule(plan: FaultPlan) -> List[DriveFaultEdge]:
    """The fail/revive edge sequence a plan's drive-level faults yield.

    Flap cycle ``k`` fails the drive at ``flap_at_ms + k * (down + up)``
    and revives it ``flap_down_ms`` later.  A permanent death at
    ``death_at_ms`` truncates the schedule: no edge at or after the
    death survives, because nothing revives a cleanly dead drive.
    Tests use this pure function as the oracle for what
    :func:`start_drive_faults` will do.
    """
    edges: List[DriveFaultEdge] = []
    if plan.flap_at_ms is not None:
        at = plan.flap_at_ms
        for _ in range(plan.flap_cycles):
            edges.append((at, "fail"))
            edges.append((at + plan.flap_down_ms, "revive"))
            at += plan.flap_down_ms + plan.flap_up_ms
    if plan.death_at_ms is not None:
        edges = [edge for edge in edges if edge[0] < plan.death_at_ms]
        edges.append((plan.death_at_ms, "fail"))
    edges.sort(key=lambda edge: edge[0])
    return edges


def start_drive_faults(
    sim: Simulation, drive: DiskDrive, plan: FaultPlan,
) -> Optional[Process]:
    """Launch ``plan``'s drive-level fault schedule against ``drive``.

    Returns the background process executing the schedule, or ``None``
    when the plan has no drive-level faults (the common case — the
    process then costs nothing, not even a kernel event).  Edge times
    are absolute simulated times; edges already in the past fire
    immediately.
    """
    schedule = drive_fault_schedule(plan)
    if not schedule:
        return None
    return sim.process(_execute(sim, drive, schedule),
                       name=f"drive-faults:{drive.name}")


def _execute(
    sim: Simulation, drive: DiskDrive, schedule: List[DriveFaultEdge],
) -> Generator[Event, Any, None]:
    # unit: (schedule: ms)
    for at_ms, action in schedule:
        if at_ms > sim.now:
            yield sim.timeout(at_ms - sim.now)
        if action == "fail":
            drive.fail()
        else:
            drive.revive()
