"""Deterministic media-fault injection for simulated drives.

The paper's failure model is power loss only; real drives also throw
transient read/write errors, grow bad sectors over their lifetime, and
occasionally corrupt data silently.  This package models all of those
as a seeded, reproducible schedule that can be attached to any
:class:`~repro.disk.drive.DiskDrive`:

* :class:`FaultPlan` — a declarative description of a fault scenario
  (latent/grown bad sectors, transient error probabilities, silent
  bit-flip corruption, latency spikes) plus the drive's fault-handling
  budget (retry limit, spare-sector pool).
* :class:`FaultInjector` — the per-drive stateful instance the drive
  consults on every command.  All randomness comes from a private
  ``random.Random`` seeded from the plan seed and the drive name, so
  the same plan on the same workload produces bit-identical fault
  sequences — and a drive with no injector attached takes a zero-cost
  fast path that cannot perturb existing simulations.
* :mod:`repro.faults.drives` — drive-*level* faults (whole-drive
  death, intermittent flapping) executed by a background simulation
  process, since a drive can die while idle.  The edge schedule is a
  pure function of the plan, so determinism holds with no randomness
  at all.
* :mod:`repro.faults.scenarios` — canonical named scenarios for the
  CLI demo (``python -m repro faults <scenario>``).  Imported lazily
  (it pulls in the whole Trail stack, which itself imports this
  package).
"""

from repro.faults.drives import drive_fault_schedule, start_drive_faults
from repro.faults.plan import FaultInjector, FaultPlan

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "drive_fault_schedule",
    "start_drive_faults",
]
