"""Canned fault-injection demos behind ``python -m repro faults``.

Each scenario builds a small Trail testbed, attaches a seeded
:class:`~repro.faults.plan.FaultPlan` to one or more drives, runs a
write workload (crashing and remounting where the scenario calls for
it), and returns the error/retry/remap/degraded-mode counters for the
CLI to render.  Scenarios are deterministic: the same ``--seed``
reproduces the same fault sequence and the same tables.

This module imports the full Trail stack, so it must never be imported
from ``repro.faults.__init__`` (the drive layer imports
``repro.faults.plan``); the CLI imports it lazily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import (
    Any, Callable, Generator, List, Mapping, Optional, Tuple)

from repro.core.config import TrailConfig
from repro.core.instance import TrailInstance
from repro.core.recovery import RecoveryReport
from repro.disk.drive import DiskDrive
from repro.disk.presets import tiny_test_disk
from repro.errors import DiskHaltedError, MediaError, TrailError
from repro.faults.plan import FaultPlan
from repro.sim import Event, Simulation


@dataclass
class ScenarioResult:
    """Everything a scenario measured, ready for table rendering."""

    name: str
    description: str
    #: [drive, transient errs, retries, read errs, write errs,
    #:  remapped, spikes]
    drive_rows: List[List[object]] = field(default_factory=list)
    #: [drive, bad sectors, grown, corrupted, remapped, spares left]
    injector_rows: List[List[object]] = field(default_factory=list)
    #: [metric, value] pairs from the Trail driver itself.
    driver_rows: List[List[object]] = field(default_factory=list)
    recovery: Optional[RecoveryReport] = None
    notes: List[str] = field(default_factory=list)


def _build_testbed(config: Optional[TrailConfig] = None,
                   data_disk_count: int = 1) -> TrailInstance[DiskDrive]:
    """A tiny-drive Trail instance (fast enough for an interactive demo)."""
    sim = Simulation()
    spec = tiny_test_disk(cylinders=40)
    log_drive = spec.make_drive(sim, "trail-log")
    data_drives = {
        disk_id: spec.make_drive(sim, f"data{disk_id}")
        for disk_id in range(data_disk_count)
    }
    trail_config = config or TrailConfig(idle_reposition_interval_ms=0)
    return TrailInstance(sim, log_drive, data_drives, trail_config)


def _writer(bed: TrailInstance[DiskDrive], count: int, seed: int,
            gap_ms: float = 2.0,
            span: Optional[int] = None,
            ) -> Generator[Event, Any, Tuple[int, int]]:
    """Issue ``count`` seeded single-page writes, tolerating failures."""
    from random import Random
    rng = Random(seed)
    sector_size = bed.driver.sector_size
    if span is None:
        span = bed.data_drives[0].geometry.total_sectors
    acked = failed = 0
    for index in range(count):
        lba = rng.randrange(0, span - 4)
        payload = bytes([index % 251] * sector_size)
        try:
            yield bed.driver.write(lba, payload)
            acked += 1
        except (MediaError, DiskHaltedError, TrailError):
            failed += 1  # media failure, power loss, or driver down
        if gap_ms > 0:
            yield bed.sim.timeout(gap_ms)
    return acked, failed


def _collect(bed: TrailInstance[DiskDrive],
             result: ScenarioResult) -> None:
    """Fill the stats tables from every drive and the driver."""
    drives = [bed.log_drive] + [bed.data_drives[key]
                                for key in sorted(bed.data_drives)]
    for drive in drives:
        stats = drive.stats
        result.drive_rows.append([
            drive.name, stats.transient_errors, stats.retries,
            stats.read_errors, stats.write_errors,
            stats.sectors_remapped, stats.latency_spikes])
        if drive.faults is not None:
            injector = drive.faults
            result.injector_rows.append([
                drive.name, len(injector.bad_sectors),
                len(injector.grown_defects),
                len(injector.corrupted_sectors),
                len(injector.remapped_sectors), injector.spares_left])
    driver = bed.driver
    result.driver_rows = [
        ["logical writes", driver.stats.logical_writes],
        ["physical log writes", driver.stats.physical_log_writes],
        ["mean sync latency (ms)",
         round(driver.stats.sync_writes.mean, 3)
         if driver.stats.sync_writes.count else "-"],
        ["log media errors", driver.stats.log_media_errors],
        ["degraded mode", "yes" if driver.degraded else "no"],
        ["degraded writes", driver.stats.degraded_writes],
        ["writeback retries", driver.writeback.write_retries],
        ["writeback pages relocated", driver.writeback.pages_relocated],
        ["writeback pages parked", len(driver.writeback.failed_pages)],
    ]


def _scenario_flaky_data_disk(seed: int) -> ScenarioResult:
    """Transient data-disk write errors: retries and spare remapping."""
    result = ScenarioResult(
        name="flaky-data-disk",
        description=_scenario_flaky_data_disk.__doc__ or "")
    bed = _build_testbed()
    bed.data_drives[0].attach_faults(FaultPlan(
        seed=seed, transient_write_error_prob=0.25,
        latent_bad_sectors=frozenset(range(200, 208)),
        retry_limit=2, spare_sectors=32))
    process = bed.sim.process(_writer(bed, count=150, seed=seed))
    acked, failed = bed.sim.run_until(process)
    bed.sim.run_until(bed.sim.process(bed.driver.flush()))
    result.notes.append(f"{acked} writes acknowledged, {failed} failed")
    result.notes.append(
        "every acknowledged write survived on the log disk while the "
        "write-back scheduler retried and remapped the flaky targets")
    _collect(bed, result)
    return result


def _scenario_dying_log_disk(seed: int) -> ScenarioResult:
    """Unrecoverable log-disk sectors: degrade to write-through."""
    result = ScenarioResult(
        name="dying-log-disk",
        description=_scenario_dying_log_disk.__doc__ or "")
    bed = _build_testbed()
    geometry = bed.log_drive.geometry
    # Every usable log track beyond the first two is unwritable and the
    # spare pool is empty, so the writer hits an unrecoverable sector
    # as soon as it advances past them.
    first_bad_track = 6
    first_lba = geometry.track_first_lba(first_bad_track)
    bad = frozenset(range(first_lba, geometry.total_sectors))
    bed.log_drive.attach_faults(FaultPlan(
        seed=seed, latent_bad_sectors=bad, retry_limit=1,
        spare_sectors=0))
    process = bed.sim.process(_writer(bed, count=120, seed=seed))
    acked, failed = bed.sim.run_until(process)
    bed.sim.run_until(bed.sim.process(bed.driver.flush()))
    result.notes.append(f"{acked} writes acknowledged, {failed} failed")
    if bed.driver.degraded:
        result.notes.append(
            "the driver abandoned the log disk and now acknowledges "
            "writes synchronously from the data disks")
    _collect(bed, result)
    return result


def _scenario_corrupt_log_crash(seed: int) -> ScenarioResult:
    """Silent log corruption + crash: recovery detects and reports."""
    result = ScenarioResult(
        name="corrupt-log-crash",
        description=_scenario_corrupt_log_crash.__doc__ or "")
    bed = _build_testbed()
    bed.log_drive.attach_faults(FaultPlan(seed=seed, corruption_prob=0.10))

    def crasher() -> Generator[Event, Any, None]:
        yield bed.sim.timeout(120.0)
        bed.driver.crash()

    writer = bed.sim.process(_writer(bed, count=200, seed=seed,
                                     gap_ms=1.0))
    bed.sim.process(crasher())
    bed.sim.run()
    acked, failed = writer.value if writer.processed else (0, 0)
    result.notes.append(
        f"crashed at t=120 ms: {acked} writes acknowledged, "
        f"{failed} failed")

    result.recovery = report = bed.remount()
    if report is not None and report.damaged:
        result.notes.append(
            "recovery found bit-flipped records via the payload CRC and "
            "reported the affected sectors instead of replaying garbage")
    _collect(bed, result)
    return result


def _scenario_latency_spikes(seed: int) -> ScenarioResult:
    """Per-command latency spikes: thermal recalibration pauses."""
    result = ScenarioResult(
        name="latency-spikes",
        description=_scenario_latency_spikes.__doc__ or "")
    bed = _build_testbed()
    plan = FaultPlan(seed=seed, latency_spike_prob=0.15,
                     latency_spike_ms=25.0)
    bed.log_drive.attach_faults(plan)
    bed.data_drives[0].attach_faults(plan)
    process = bed.sim.process(_writer(bed, count=150, seed=seed))
    acked, failed = bed.sim.run_until(process)
    bed.sim.run_until(bed.sim.process(bed.driver.flush()))
    result.notes.append(f"{acked} writes acknowledged, {failed} failed")
    result.notes.append(
        "spikes stretch individual commands but corrupt nothing; "
        "compare mean latency against a clean run of the same seed")
    _collect(bed, result)
    return result


# trailiso: shared_immutable -- scenario registry frozen at import; per-run state lives in each runner's TrailInstance
SCENARIOS: Mapping[str, Callable[[int], ScenarioResult]] = \
    MappingProxyType({
        "flaky-data-disk": _scenario_flaky_data_disk,
        "dying-log-disk": _scenario_dying_log_disk,
        "corrupt-log-crash": _scenario_corrupt_log_crash,
        "latency-spikes": _scenario_latency_spikes,
    })


def run_fault_scenario(name: str, seed: int = 0) -> ScenarioResult:
    """Run one named scenario and return its collected statistics."""
    try:
        runner = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(
            f"unknown fault scenario {name!r} (known: {known})") from None
    return runner(seed)
