"""Figure 4: data-recovery overhead on the full-size log disk.

(a) Breakdown of recovery time into its three steps — locate the
    youngest record (binary search over tracks, ~450 ms on the paper's
    5400 RPM disk), rebuild the pending chain via prev_sect, write the
    pending records back to the data disk — as the number of pending
    records Q grows from 32 to 256.
(b) Recovery with the write-back step included vs bypassed: the paper
    measures >3.5x slower with write-back at Q=256, because that step
    makes random accesses to the data disk while the other two read
    the log disk largely sequentially.

Also covers two DESIGN.md ablations: binary search vs sequential scan
for the locate step, and the log_head bound for the rebuild step.

Setup: a mounted Trail driver whose write-back scheduler is stopped, so
every acknowledged write remains a pending record; then a crash.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.analysis import build_trail_system, render_table
from repro.core.config import TrailConfig
from repro.core.instance import TrailInstance
from repro.core.recovery import RecoveryReport
from repro.disk.presets import st41601n, wd_caviar_10gb
from repro.sim import Simulation
from benchmarks.conftest import print_report

PENDING_COUNTS = [32, 64, 128, 256]


def crashed_disks_with_pending(pending: int):
    """Produce (log snapshot, data snapshot) with ``pending`` records."""
    system = build_trail_system(
        config=TrailConfig(idle_reposition_interval_ms=0))
    sim, driver = system.sim, system.driver
    driver.writeback.stop()  # nothing commits: all writes stay pending

    def workload():
        for index in range(pending):
            yield driver.write(index * 64, bytes([index % 255 + 1]) * 2048)

    sim.run_until(sim.process(workload()))
    driver.crash()
    sim.run(until=sim.now + 100)
    return (system.log_drive.store.snapshot(),
            system.data_drives[0].store.snapshot())


def recover(log_snapshot, data_snapshot,
            config: TrailConfig) -> RecoveryReport:
    sim = Simulation()
    log_drive = st41601n().make_drive(sim, "log")
    data_drive = wd_caviar_10gb().make_drive(sim, "data0")
    log_drive.store.restore(log_snapshot)
    data_drive.store.restore(data_snapshot)
    # format_log=False: the restored snapshot *is* the formatted,
    # crashed log image the recovery pass has to make sense of.
    instance = TrailInstance(sim, log_drive, {0: data_drive}, config,
                             format_log=False)
    assert instance.driver.last_recovery is not None
    return instance.driver.last_recovery


@pytest.fixture(scope="module")
def snapshots():
    return {pending: crashed_disks_with_pending(pending)
            for pending in PENDING_COUNTS}


@pytest.fixture(scope="module")
def with_writeback(snapshots) -> Dict[int, RecoveryReport]:
    config = TrailConfig(idle_reposition_interval_ms=0)
    return {pending: recover(*snapshots[pending], config)
            for pending in PENDING_COUNTS}


@pytest.fixture(scope="module")
def without_writeback(snapshots) -> Dict[int, RecoveryReport]:
    config = TrailConfig(idle_reposition_interval_ms=0,
                         recovery_writeback=False)
    return {pending: recover(*snapshots[pending], config)
            for pending in PENDING_COUNTS}


def test_figure4_report(with_writeback, without_writeback, once):
    def build_report():
        rows_a = [
            [pending, report.locate_ms, report.rebuild_ms,
             report.writeback_ms, report.total_ms]
            for pending, report in sorted(with_writeback.items())
        ]
        part_a = render_table(
            ["Q (pending)", "locate (ms)", "rebuild (ms)",
             "write-back (ms)", "total (ms)"],
            rows_a,
            title=("Figure 4(a): recovery-time breakdown "
                   "[paper: locate ~450 ms, constant; other steps grow "
                   "with Q]"))
        rows_b = [
            [pending, with_writeback[pending].total_ms,
             without_writeback[pending].total_ms,
             f"{with_writeback[pending].total_ms / without_writeback[pending].total_ms:.1f}x"]
            for pending in PENDING_COUNTS
        ]
        part_b = render_table(
            ["Q (pending)", "with write-back (ms)",
             "bypassed (ms)", "ratio"],
            rows_b,
            title=("Figure 4(b): write-back included vs bypassed "
                   "[paper: >3.5x at Q=256]"))
        return part_a + "\n\n" + part_b

    print_report(once(build_report))
    big = PENDING_COUNTS[-1]
    assert (with_writeback[big].total_ms
            > 2.0 * without_writeback[big].total_ms)


def test_locate_roughly_constant_in_q(with_writeback):
    """Binary search cost depends on the track count, not on Q."""
    locates = [with_writeback[q].locate_ms for q in PENDING_COUNTS]
    assert max(locates) < 2.0 * min(locates)


def test_locate_magnitude_near_paper(with_writeback):
    """Paper: ~450 ms to locate on a 35,717-track 5400 RPM disk (~20
    track scans).  Same drive model here, so the magnitude should be
    comparable."""
    locate = with_writeback[PENDING_COUNTS[0]].locate_ms
    assert 100 < locate < 1500, locate
    assert with_writeback[PENDING_COUNTS[0]].tracks_scanned <= 30


def test_rebuild_and_writeback_grow_with_q(with_writeback):
    small = with_writeback[PENDING_COUNTS[0]]
    large = with_writeback[PENDING_COUNTS[-1]]
    assert large.rebuild_ms > small.rebuild_ms
    assert large.writeback_ms > small.writeback_ms


def test_writeback_dominates_at_large_q(with_writeback):
    """Random data-disk access makes step 3 the bulk of recovery."""
    report = with_writeback[PENDING_COUNTS[-1]]
    assert report.writeback_ms > report.locate_ms
    assert report.writeback_ms > report.rebuild_ms


def test_bypass_preserves_pending_chain(without_writeback):
    for pending, report in without_writeback.items():
        assert report.records_found == pending
        assert len(report.pending) == pending
        assert not report.writeback_performed


def test_all_records_found(with_writeback):
    for pending, report in with_writeback.items():
        assert report.records_found == pending
        assert report.sectors_replayed == pending * 4  # 2 KB writes


# ----------------------------------------------------------------------
# Ablations (DESIGN.md §5)

def test_ablation_binary_search_vs_sequential(snapshots):
    log_snapshot, data_snapshot = snapshots[64]
    binary = recover(log_snapshot, data_snapshot,
                     TrailConfig(idle_reposition_interval_ms=0,
                                 recovery_writeback=False))
    sequential = recover(log_snapshot, data_snapshot,
                         TrailConfig(idle_reposition_interval_ms=0,
                                     recovery_writeback=False,
                                     binary_search_recovery=False))
    print_report(render_table(
        ["strategy", "tracks scanned", "locate (ms)"],
        [["binary search", binary.tracks_scanned, binary.locate_ms],
         ["sequential scan", sequential.tracks_scanned,
          sequential.locate_ms]],
        title="Ablation: locating the youngest record "
              "(O(lg N) vs O(N) track scans)"))
    assert binary.records_found == sequential.records_found
    assert binary.tracks_scanned < sequential.tracks_scanned / 100
    assert binary.locate_ms < sequential.locate_ms / 50


def test_ablation_log_head_bound(snapshots):
    """Without the log_head bound, rebuild walks the entire prev_sect
    chain; with it, only the active portion.  Here nothing ever
    committed, so the two agree — the bound's value shows once records
    commit (covered in tests/core/test_recovery.py); this ablation
    checks the bound never loses records."""
    log_snapshot, data_snapshot = snapshots[128]
    bounded = recover(log_snapshot, data_snapshot,
                      TrailConfig(idle_reposition_interval_ms=0,
                                  recovery_writeback=False))
    unbounded = recover(log_snapshot, data_snapshot,
                        TrailConfig(idle_reposition_interval_ms=0,
                                    recovery_writeback=False,
                                    log_head_bound_enabled=False))
    assert bounded.records_found == unbounded.records_found == 128
