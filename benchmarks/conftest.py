"""Shared infrastructure for the benchmark suite.

Each benchmark module reproduces one table or figure from the paper:
it runs the experiment on simulated hardware, prints the result in the
paper's layout next to the paper's numbers, and asserts the *shape*
claims (orderings, ratios, crossovers).  Absolute milliseconds differ
from the authors' 2002 testbed; shapes should not.

``pytest benchmarks/ --benchmark-only`` runs everything; pass
``--full-scale`` for the paper's exact run lengths (5000/10000
transactions) instead of the faster default scale.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--full-scale", action="store_true", default=False,
        help="run TPC-C benchmarks at the paper's full transaction "
             "counts (slower)")


@pytest.fixture(scope="session")
def full_scale(request) -> bool:
    """True when --full-scale was passed."""
    return request.config.getoption("--full-scale")


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    The experiments measure *simulated* time internally; the benchmark
    fixture just reports the wall-clock cost of regenerating the table.
    """
    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1)
    return run


def print_report(text: str) -> None:
    """Emit a result table (shown with pytest -s; captured otherwise)."""
    print()
    print(text)
