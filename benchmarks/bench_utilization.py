"""§5.2 in-text result: log-disk per-track space utilization under
TPC-C grows with transaction concurrency.

Paper: "when the transaction concurrency is 4, the per-track space
utilization of Trail's log disk is 12%.  The same per-track space
utilization is increased to 21% when the concurrency is 8, and to over
30% when the concurrency is 12" — because more concurrent terminals
produce burstier log-queue arrivals, and each batched write fills more
of its track before the head moves on.

Also includes the track-switch-threshold ablation from DESIGN.md: the
threshold trades write latency (lower threshold -> fresher tracks ->
shorter rotational waits) against space efficiency.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.analysis import render_table
from repro.core.config import TrailConfig
from repro.analysis import build_trail_system
from repro.tpcc import TpccRunConfig, TpccRunResult, run_tpcc
from repro.units import KiB
from repro.workloads import (
    ArrivalMode, SyncWriteWorkload, run_sync_write_workload)
from benchmarks.conftest import print_report

CONCURRENCY_LEVELS = [4, 8, 12]
PAPER_UTILIZATION = {4: 0.12, 8: 0.21, 12: 0.30}


@pytest.fixture(scope="module")
def results(request) -> Dict[int, TpccRunResult]:
    transactions = (3000 if request.config.getoption("--full-scale")
                    else 800)
    out = {}
    for concurrency in CONCURRENCY_LEVELS:
        # Match the paper's §5.2 regime: "the CPU time each transaction
        # requires is much smaller than the disk I/O delay due to
        # database logging" — a warm cache and tiny CPU cost make
        # transactions log-bound, so commits bunch at the log disk and
        # batch sizes grow with concurrency.  The page flusher is
        # quiesced because the paper's Berkeley DB kept dirty pages in
        # its 300 MB mpool (its log disk carried nearly pure log
        # traffic).
        config = TpccRunConfig(system="trail", transactions=transactions,
                               concurrency=concurrency, warehouses=1,
                               seed=31, flush_interval_ms=10_000.0,
                               flush_batch=1, cpu_ms_per_op=0.02,
                               pool_pages=20_000)
        out[concurrency] = run_tpcc(config)
    return out


def test_utilization_report(results, once):
    def build_report():
        rows = [
            [concurrency,
             f"{results[concurrency].one_batch_per_track_utilization:.1%}",
             f"{PAPER_UTILIZATION[concurrency]:.0%}"
             + ("+" if concurrency == 12 else "")]
            for concurrency in CONCURRENCY_LEVELS
        ]
        return render_table(
            ["concurrency", "batch/track utilization", "paper"],
            rows,
            title="Sec. 5.2: Trail log-disk per-track utilization "
                  "(one-batched-write-per-track metric, as the paper "
                  "assumes) vs TPC-C concurrency")

    print_report(once(build_report))
    values = [results[c].one_batch_per_track_utilization
              for c in CONCURRENCY_LEVELS]
    assert values[-1] >= values[0] * 0.95


def test_utilization_does_not_shrink_with_concurrency(results):
    """Direction-or-flat: our deterministic service times produce far
    less commit bunching than the paper's testbed (EXPERIMENTS.md D3),
    so the growth is weak; it must never reverse materially."""
    values = [results[c].one_batch_per_track_utilization
              for c in CONCURRENCY_LEVELS]
    assert values[-1] >= values[0] * 0.95, values


def test_utilization_in_plausible_band(results):
    """Not exact percentages, but the same regime: meaningful
    ten-to-tens-of-percent utilization, nowhere near full tracks.
    (Our per-commit log volume is ~2x the paper's because the engine
    logs before+after images, so the absolute level sits higher.)"""
    for concurrency in CONCURRENCY_LEVELS:
        utilization = results[concurrency].one_batch_per_track_utilization
        assert 0.05 < utilization < 0.8, (concurrency, utilization)


def test_batching_drives_the_effect(results):
    """Concurrency makes some forces share a physical log write: fewer
    physical log writes than transactions (impossible at c=1 with one
    force per commit)."""
    high = results[12]
    assert (high.log_physical_writes
            < high.transactions_completed * 1.0)


# ----------------------------------------------------------------------
# Ablation: the 30% track-switch threshold (DESIGN.md §5)

THRESHOLDS = [0.10, 0.30, 0.60, 0.90]


@pytest.fixture(scope="module")
def threshold_sweep():
    out = {}
    for threshold in THRESHOLDS:
        system = build_trail_system(
            config=TrailConfig(track_utilization_threshold=threshold))
        workload = SyncWriteWorkload(requests_per_process=150,
                                     write_bytes=KiB(2),
                                     mode=ArrivalMode.CLUSTERED, seed=3)
        result = run_sync_write_workload(system.sim, system.driver,
                                         workload)
        allocator = system.driver.allocator
        out[threshold] = (result.mean_latency_ms,
                          allocator.mean_retired_utilization())
    return out


def test_threshold_ablation_report(threshold_sweep, once):
    def build_report():
        rows = [
            [f"{threshold:.0%}", latency, f"{utilization:.1%}"]
            for threshold, (latency, utilization)
            in sorted(threshold_sweep.items())
        ]
        return render_table(
            ["switch threshold", "mean write latency (ms)",
             "retired-track utilization"],
            rows,
            title="Ablation: track-switch threshold trade-off "
                  "(clustered 2 KB writes)")

    print_report(once(build_report))


def test_higher_threshold_higher_utilization(threshold_sweep):
    utilizations = [threshold_sweep[t][1] for t in THRESHOLDS]
    assert utilizations[0] < utilizations[-1]
