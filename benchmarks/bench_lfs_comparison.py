"""Section 2 comparison: Trail vs an LFS-style driver vs in-place.

The paper argues (without measuring) that:
  * "Trail also has a better synchronous write performance than LFS
    because it eliminates rotational latency" — LFS appends avoid most
    seeking but the log tail's angular position is uncontrolled.
  * "Trail incurs less disk access overhead due to garbage collection
    because pending write requests are written to data disks from main
    memory rather than from the log disk.  In contrast, LFS needs a
    disk read and a disk write to clean a disk segment."

This benchmark measures both claims on the same drive models.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import (
    build_lfs_system, build_standard_system, build_trail_system,
    render_table)
from repro.units import KiB
from repro.workloads import (
    ArrivalMode, SyncWriteWorkload, run_sync_write_workload)
from benchmarks.conftest import print_report


def _build(kind):
    if kind == "trail":
        return build_trail_system()
    if kind == "lfs":
        return build_lfs_system()
    if kind == "dcd":
        from repro.baselines.dcd import DcdDriver
        from repro.disk.presets import st41601n, wd_caviar_10gb
        from repro.sim import Simulation
        from repro.analysis.experiments import BaselineSystem
        sim = Simulation()
        cache = st41601n().make_drive(sim, "dcd-cache")
        data = {0: wd_caviar_10gb().make_drive(sim, "data0")}
        driver = DcdDriver(sim, cache, data, nvram_bytes=KiB(512))
        return BaselineSystem(sim=sim, driver=driver, data_drives=data)
    return build_standard_system()


@pytest.fixture(scope="module")
def latency_comparison():
    workload = SyncWriteWorkload(requests_per_process=120,
                                 write_bytes=KiB(1),
                                 mode=ArrivalMode.SPARSE, seed=8)
    out = {}
    for kind in ("trail", "lfs", "dcd", "standard"):
        system = _build(kind)
        out[kind] = run_sync_write_workload(system.sim, system.driver,
                                            workload)
    return out


def test_latency_report(latency_comparison, once):
    def build_report():
        rows = [
            [kind, result.mean_latency_ms,
             f"{latency_comparison['standard'].mean_latency_ms / result.mean_latency_ms:.1f}x"]
            for kind, result in latency_comparison.items()
        ]
        return render_table(
            ["driver", "mean 1KB sync write (ms)", "vs in-place"],
            rows,
            title="Sec. 2: synchronous write latency across layouts")

    print_report(once(build_report))
    means = {kind: result.mean_latency_ms
             for kind, result in latency_comparison.items()}
    assert means["trail"] < means["lfs"] < means["standard"]
    # §2 on DCD: with battery-backed RAM it beats everything on raw
    # latency; Trail's point is getting close without the hardware.
    assert means["dcd"] < means["trail"]


def test_lfs_pays_rotational_latency(latency_comparison):
    """LFS latency sits roughly an average rotational latency above
    Trail's (5.5 ms on these 5400 RPM drives)."""
    gap = (latency_comparison["lfs"].mean_latency_ms
           - latency_comparison["trail"].mean_latency_ms)
    assert 1.5 < gap < 9.0, gap


def test_cleaning_overhead_trail_free_lfs_not(once):
    """Overwrite a small hot set until the LFS disk must clean; Trail's
    FIFO track reuse needs no disk reads at all."""
    def run():
        from repro.disk.presets import tiny_test_disk
        from repro.core.config import TrailConfig

        # Small disks so the hot-set overwrites create real space
        # pressure: the LFS log (1,280 sectors, 5 segments) and the
        # Trail log ring (~76 tracks) both wrap many times.
        hot_set = 64  # logical 1 KB blocks, rewritten many times
        rounds = 2500
        rng = random.Random(5)

        lfs_system = build_lfs_system(
            data_spec=tiny_test_disk(cylinders=40, heads=2,
                                     sectors_per_track=16),
            segment_sectors=256)
        lfs = lfs_system.driver

        def lfs_load():
            for _ in range(rounds):
                block = rng.randrange(hot_set)
                yield lfs.write(block * 2, bytes(KiB(1)))

        lfs_system.sim.run_until(
            lfs_system.sim.process(lfs_load()))

        trail_system = build_trail_system(
            config=TrailConfig(idle_reposition_interval_ms=0),
            log_spec=tiny_test_disk(cylinders=40, heads=2,
                                    sectors_per_track=16),
            data_spec=tiny_test_disk(cylinders=120, heads=4,
                                     sectors_per_track=32))
        trail = trail_system.driver
        rng2 = random.Random(5)

        def trail_load():
            for _ in range(rounds):
                block = rng2.randrange(hot_set)
                yield trail.write(block * 2, bytes(KiB(1)))

        trail_system.sim.run_until(
            trail_system.sim.process(trail_load()))
        return lfs, trail

    lfs, trail = once(run)
    print_report(render_table(
        ["driver", "cleaning disk reads", "cleaning copies",
         "mean write (ms)"],
        [["lfs", lfs.stats.live_sectors_copied,
          lfs.stats.segments_cleaned, lfs.stats.sync_writes.mean],
         ["trail", 0, 0, trail.stats.sync_writes.mean]],
        title="Sec. 2: garbage-collection overhead under hot-set "
              "overwrites"))
    # LFS had to clean; Trail never reads its log disk in normal
    # operation (write-backs come from host memory).
    assert lfs.stats.segments_cleaned > 0
    assert trail.stats.physical_log_writes > 0
    # Trail's only log-disk reads: the mount-time header (2 sectors),
    # one anchor read, and the 1-sector reposition reads.
    assert trail.log_drive.stats.sectors_read \
        <= trail.stats.repositions + 3
