"""Table 1: total elapsed time for a sequence of 32 one-sector
synchronous writes as the batch size varies from 1 to 32.

Paper numbers (ms): batch 1 -> 129.9, 2 -> 69.6, 4 -> 33.1, 8 -> 17.7,
16 -> 10.9, 32 -> 8.4 — a ~15x spread between the extremes, because
each physical log write pays a repositioning delay and a
write-after-write command delay that batching amortizes.

The experiment submits the 32 writes in groups of ``batch``: all
requests of a group arrive at once (so Trail's interrupt-time batching
coalesces them into one record), and the next group is submitted when
the previous group completes.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.analysis import build_trail_system, render_table
from benchmarks.conftest import print_report

BATCH_SIZES = [1, 2, 4, 8, 16, 32]
TOTAL_WRITES = 32
PAPER_MS = {1: 129.9, 2: 69.6, 4: 33.1, 8: 17.7, 16: 10.9, 32: 8.4}


def run_batched_sequence(batch: int) -> float:
    system = build_trail_system()
    sim, driver = system.sim, system.driver

    def body():
        started = sim.now
        submitted = 0
        while submitted < TOTAL_WRITES:
            group = [
                driver.write((submitted + index) * 64, bytes(512))
                for index in range(min(batch, TOTAL_WRITES - submitted))
            ]
            submitted += len(group)
            yield sim.all_of(group)
        return sim.now - started

    return sim.run_until(sim.process(body(), name=f"batch-{batch}"))


@pytest.fixture(scope="module")
def elapsed() -> Dict[int, float]:
    return {batch: run_batched_sequence(batch) for batch in BATCH_SIZES}


def test_table1_report(elapsed, once):
    def build_report():
        rows = [
            [batch, elapsed[batch], PAPER_MS[batch],
             f"{elapsed[1] / elapsed[batch]:.1f}x"]
            for batch in BATCH_SIZES
        ]
        return render_table(
            ["batch size", "measured (ms)", "paper (ms)",
             "speedup vs batch 1"],
            rows,
            title=("Table 1: elapsed time for 32 one-sector synchronous "
                   "writes vs batch size"))

    print_report(once(build_report))
    assert elapsed[1] / elapsed[32] > 5.0
    values = [elapsed[batch] for batch in BATCH_SIZES]
    for smaller, larger in zip(values, values[1:]):
        assert larger <= smaller * 1.05


def test_elapsed_monotonically_decreasing(elapsed):
    values = [elapsed[batch] for batch in BATCH_SIZES]
    for smaller, larger in zip(values, values[1:]):
        assert larger <= smaller * 1.05  # allow sub-5% noise


def test_extreme_ratio_matches_paper_order(elapsed):
    """Paper: a factor of ~15 between batch 1 and batch 32."""
    ratio = elapsed[1] / elapsed[32]
    assert ratio > 5.0, f"expected a large batching win, got {ratio:.1f}x"


def test_batch1_dominated_by_per_write_overheads(elapsed):
    """At batch 1 every write pays reposition + command overhead; the
    per-write cost must far exceed the bare transfer time (~0.12 ms)."""
    per_write = elapsed[1] / TOTAL_WRITES
    assert per_write > 1.8


def test_batch32_close_to_single_write_cost(elapsed):
    """At batch 32 the sequence is a single physical write of 33
    sectors: transfer (~4 ms) + one command overhead + bounded
    rotational wait."""
    assert elapsed[32] < 12.0
