"""Table 2: TPC-C (w=1, concurrency 1) on the three storage systems.

Paper numbers for 5000 transactions, 50 KB log buffer:

    system       response (s)   logging I/O (s)   tpmC
    EXT2+Trail        0.059          17.6         1004
    EXT2              0.097          30.4          616
    EXT2+GC           0.90           28.8          663

Shape claims asserted:
  * Trail has the highest throughput (paper: 1.63x EXT2, 1.51x GC).
  * Group commit barely beats plain EXT2 (paper: 1.08x) — the "I/O
    clustering" effect cancels most of its batching win.
  * Trail has the best response time; group commit by far the worst
    (durability is delayed to the covering flush).
  * Trail reduces logging disk-I/O time (paper: by 42%).

Default scale is 600 transactions for iteration speed; run with
``--full-scale`` for the paper's 5000.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.analysis import render_table
from repro.tpcc import TpccRunConfig, TpccRunResult, run_tpcc
from benchmarks.conftest import print_report

PAPER = {
    "trail": {"response_s": 0.059, "logging_s": 17.6, "tpmc": 1004},
    "ext2": {"response_s": 0.097, "logging_s": 30.4, "tpmc": 616},
    "ext2+gc": {"response_s": 0.90, "logging_s": 28.8, "tpmc": 663},
}

LABELS = {"trail": "EXT2+Trail", "ext2": "EXT2", "ext2+gc": "EXT2+GC"}


@pytest.fixture(scope="module")
def results(request) -> Dict[str, TpccRunResult]:
    transactions = (5000 if request.config.getoption("--full-scale")
                    else 600)
    out = {}
    for system in ("trail", "ext2", "ext2+gc"):
        config = TpccRunConfig(system=system, transactions=transactions,
                               concurrency=1, warehouses=1,
                               log_buffer_kb=50, seed=42)
        out[system] = run_tpcc(config)
    return out


def test_table2_report(results, once):
    def build_report():
        rows = []
        for system in ("trail", "ext2", "ext2+gc"):
            result = results[system]
            paper = PAPER[system]
            rows.append([
                LABELS[system],
                result.avg_response_s, paper["response_s"],
                result.logging_io_s, paper["logging_s"],
                result.tpmc, paper["tpmc"],
            ])
        scale_note = results["trail"].transactions_completed
        return render_table(
            ["system", "resp (s)", "paper", "log I/O (s)", "paper",
             "tpmC", "paper"],
            rows,
            title=(f"Table 2: TPC-C, concurrency 1, w=1 "
                   f"({scale_note} transactions completed; paper ran "
                   f"5000 — compare shapes, not absolutes)"))

    print_report(once(build_report))
    assert results["trail"].tpmc > results["ext2+gc"].tpmc \
        > results["ext2"].tpmc
    assert (results["ext2+gc"].avg_response_s
            > results["ext2"].avg_response_s
            > results["trail"].avg_response_s)
    assert (results["trail"].logging_io_s
            < results["ext2"].logging_io_s)


def test_trail_highest_throughput(results):
    assert results["trail"].tpmc > results["ext2"].tpmc
    assert results["trail"].tpmc > results["ext2+gc"].tpmc


def test_trail_over_ext2_factor(results):
    """Paper: 1.63x.  Require a clearly material gain."""
    ratio = results["trail"].tpmc / results["ext2"].tpmc
    assert ratio > 1.2, f"trail/ext2 = {ratio:.2f}"


def test_group_commit_marginal_over_ext2(results):
    """Paper: GC is only 1.08x EXT2 — far below Trail's gain."""
    gc_gain = results["ext2+gc"].tpmc / results["ext2"].tpmc
    trail_gain = results["trail"].tpmc / results["ext2"].tpmc
    assert gc_gain < trail_gain
    assert gc_gain < 1.35


def test_response_time_ordering(results):
    assert (results["trail"].avg_response_s
            < results["ext2"].avg_response_s)
    # Delayed durability: GC's responses are several times worse.
    assert (results["ext2+gc"].avg_response_s
            > 3 * results["ext2"].avg_response_s)


def test_trail_reduces_logging_io(results):
    """Paper: 42% reduction (17.6 vs 30.4).  Our reproduction routes
    far more background page-flush traffic through the shared Trail
    log disk than the paper's Berkeley DB mpool produced, so the
    measured reduction is smaller; the direction must hold."""
    reduction = 1 - (results["trail"].logging_io_s
                     / results["ext2"].logging_io_s)
    assert reduction > 0.03, f"only {reduction:.0%} reduction"


def test_gc_logging_io_between(results):
    """Group commit shrinks the *number* of log I/Os drastically but
    each force is big; Trail still wins on responsiveness."""
    assert results["ext2+gc"].group_commits \
        < results["ext2"].group_commits / 3


def test_trail_sync_writes_bounded(results):
    """The driver-level mean mixes WAL commits with the flusher's
    concurrent 16-page bursts (which queue on each other by design), so
    it is far above the ~2-4 ms of an isolated write; it must still be
    a fraction of an in-place random write + queueing."""
    assert results["trail"].mean_sync_write_ms < 40.0
