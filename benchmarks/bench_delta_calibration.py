"""§3.1: empirical derivation of the prediction offset δ.

The paper's procedure: from a known reference point, issue
single-sector writes at target offsets δ = 0, 1, 2, ... from the
predicted head position and measure their latency.  Too-small δ values
pay a full rotation (the target sector has already passed by the time
the command overhead elapses); "the smallest δ value that does not
incur a full rotation delay is the final δ value".  For the paper's
ST41601N the result is "less than 15" sectors, accounting for the
fixed controller and on-disk processing overhead.

This benchmark runs that exact sweep against the ST41601N drive model
and prints the measured latency curve; it also verifies that the
mount-time analytic estimate the driver uses agrees with the measured
value.
"""

from __future__ import annotations

import pytest

from repro.analysis import build_trail_system, render_table
from repro.core.prediction import HeadPositionPredictor
from repro.disk.presets import st41601n
from repro.sim import Simulation
from benchmarks.conftest import print_report


@pytest.fixture(scope="module")
def calibration():
    sim = Simulation()
    drive = st41601n().make_drive(sim, "log")
    predictor = HeadPositionPredictor(
        drive.geometry, rotation_ms=drive.rotation.rotation_ms)
    result = sim.run_until(sim.process(
        predictor.calibrate(sim, drive, track=1, max_delta=25,
                            samples_per_delta=3)))
    return drive, predictor, result


def test_calibration_report(calibration, once):
    drive, _predictor, result = calibration

    def build_report():
        rotation = drive.rotation.rotation_ms
        rows = [
            [delta, latency,
             "FULL ROTATION" if latency > 0.5 * rotation else "ok"]
            for delta, latency in enumerate(result.latencies_by_delta)
        ]
        table = render_table(
            ["delta (sectors)", "mean write latency (ms)", "verdict"],
            rows,
            title="Sec. 3.1 delta calibration sweep on the ST41601N "
                  "model")
        return (table + f"\n\nchosen delta = {result.delta_sectors} "
                f"sectors (paper: < 15) from {result.writes_issued} "
                "calibration writes")

    print_report(once(build_report))
    assert result.delta_sectors < 15


def test_delta_below_paper_bound(calibration):
    _drive, _predictor, result = calibration
    assert result.delta_sectors < 15


def test_delta_covers_command_overhead(calibration):
    drive, _predictor, result = calibration
    sector_time = drive.rotation.sector_time(
        drive.geometry.track_sectors(1))
    assert result.delta_sectors >= int(
        drive.command_overhead_ms / sector_time)


def test_small_deltas_pay_full_rotation(calibration):
    drive, _predictor, result = calibration
    rotation = drive.rotation.rotation_ms
    # Everything clearly below the chosen delta misses the head.
    for delta in range(max(0, result.delta_sectors - 2)):
        assert result.latencies_by_delta[delta] > 0.5 * rotation, delta


def test_chosen_delta_is_fast(calibration):
    drive, _predictor, result = calibration
    latency = result.latencies_by_delta[result.delta_sectors]
    # Near the paper's ~1.4 ms overhead+transfer floor, far from a
    # full 11.1 ms rotation.
    assert latency < 4.0


def test_driver_estimate_close_to_measured(calibration):
    """The analytic mount-time estimate should land within a few
    sectors of the empirically calibrated value."""
    _drive, _predictor, result = calibration
    system = build_trail_system()
    estimate = system.driver.predictor.delta_sectors
    assert abs(estimate - result.delta_sectors) <= 4
