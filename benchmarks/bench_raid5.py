"""Future work (paper's conclusion): track-based logging vs the RAID-5
small-write problem.

A RAID-5 small write costs four member I/Os in two serial rounds
(read old data + read old parity, then write data + write parity).
Fronting the array with Trail converts the synchronous cost into one
log-disk write (~1.5-2 ms) and performs the parity update in the
background — the application-visible small-write penalty disappears.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import render_table
from repro.core.config import TrailConfig
from repro.core.instance import TrailInstance
from repro.disk.presets import st41601n, wd_caviar_10gb
from repro.raid import Raid5Array
from repro.sim import Simulation
from repro.units import KiB
from benchmarks.conftest import print_report

REQUESTS = 80


def build_array(sim, members=5):
    drives = [wd_caviar_10gb().make_drive(sim, f"member{i}")
              for i in range(members)]
    return Raid5Array(sim, drives, stripe_unit_sectors=8)


def run_raw_raid() -> tuple:
    sim = Simulation()
    array = build_array(sim)
    rng = random.Random(21)
    latencies = []

    def body():
        for _ in range(REQUESTS):
            lba = rng.randrange(0, array.total_sectors - 8)
            start = sim.now
            yield array.write(lba, bytes(KiB(4)))
            latencies.append(sim.now - start)
            yield sim.timeout(5.0)

    sim.run_until(sim.process(body()))
    return (sum(latencies) / len(latencies),
            array.stats.member_ios / REQUESTS)


def run_trail_raid() -> tuple:
    sim = Simulation()
    array = build_array(sim)
    instance = TrailInstance(
        sim, st41601n().make_drive(sim, "trail-log"), {0: array},
        TrailConfig())
    trail = instance.driver
    rng = random.Random(21)
    latencies = []

    def body():
        for _ in range(REQUESTS):
            lba = rng.randrange(0, array.total_sectors - 8)
            start = sim.now
            yield trail.write(lba, bytes(KiB(4)))
            latencies.append(sim.now - start)
            yield sim.timeout(5.0)
        yield from trail.flush()

    sim.run_until(sim.process(body()))
    return sum(latencies) / len(latencies), array


@pytest.fixture(scope="module")
def results():
    raw_latency, raw_ios = run_raw_raid()
    trail_latency, array = run_trail_raid()
    return raw_latency, raw_ios, trail_latency, array


def test_raid5_report(results, once):
    raw_latency, raw_ios, trail_latency, _array = results

    def build_report():
        return render_table(
            ["configuration", "mean 4KB sync write (ms)",
             "member I/Os per write"],
            [["RAID-5 (5 disks)", raw_latency, raw_ios],
             ["Trail + RAID-5", trail_latency,
              "deferred (background)"]],
            title="Future work: the RAID-5 small-write problem with "
                  "and without track-based logging")

    print_report(once(build_report))
    assert trail_latency < raw_latency / 3


def test_small_write_costs_four_ios(results):
    _raw_latency, raw_ios, _trail_latency, _array = results
    assert raw_ios >= 4.0


def test_parity_still_maintained_behind_trail(results):
    """Deferred parity updates still leave every stripe consistent."""
    _raw, _ios, _trail_latency, array = results
    sim = array.sim
    # XOR of all members over the first stripes must be zero wherever
    # data was written.
    for stripe in range(0, 40):
        base = stripe * array.stripe_unit
        acc = bytearray(array.stripe_unit * array.sector_size)
        for drive in array.drives:
            data = drive.store.read(base, array.stripe_unit)
            for index, byte in enumerate(data):
                acc[index] ^= byte
        assert bytes(acc) == bytes(len(acc)), f"stripe {stripe}"
