"""§5.1's closing optimization: multiple log disks.

"As a final optimization, it is possible to employ multiple log disks
to completely hide the disk re-positioning overhead from user
applications."  The paper does not evaluate this; here we do.  With
one log disk, clustered (back-to-back) writes periodically wait for
the explicit track-switch; striping over two or four log disks lets
another stripe absorb the next write while one repositions, pulling
clustered latency toward the sparse-mode floor.
"""

from __future__ import annotations

import random
from typing import Dict

import pytest

from repro.analysis import render_table
from repro.core.config import TrailConfig
from repro.core.multilog import StripedTrailDriver
from repro.disk.presets import st41601n, wd_caviar_10gb
from repro.sim import Simulation
from repro.units import KiB
from benchmarks.conftest import print_report

STRIPE_COUNTS = [1, 2, 4]
REQUESTS = 150


def run_clustered(stripes: int) -> float:
    sim = Simulation()
    log_drives = [st41601n().make_drive(sim, f"log{i}")
                  for i in range(stripes)]
    data = {0: wd_caviar_10gb().make_drive(sim, "data0")}
    config = TrailConfig()
    StripedTrailDriver.format_disks(log_drives, config)
    driver = StripedTrailDriver(sim, log_drives, data, config)
    sim.run_until(sim.process(driver.mount()))

    latencies = []

    def body():
        rng = random.Random(19)
        for _ in range(REQUESTS):
            lba = rng.randrange(0, 1_000_000)
            start = sim.now
            yield driver.write(lba, bytes(KiB(1)))
            latencies.append(sim.now - start)

    sim.run_until(sim.process(body()))
    return sum(latencies) / len(latencies)


@pytest.fixture(scope="module")
def results() -> Dict[int, float]:
    return {stripes: run_clustered(stripes)
            for stripes in STRIPE_COUNTS}


def test_multilog_report(results, once):
    def build_report():
        base = results[1]
        rows = [
            [stripes, latency, f"{base / latency:.2f}x"]
            for stripes, latency in sorted(results.items())
        ]
        return render_table(
            ["log disks", "mean clustered 1KB write (ms)",
             "vs 1 log disk"],
            rows,
            title="Sec. 5.1 final optimization: multiple log disks "
                  "hide repositioning from clustered writes")

    print_report(once(build_report))
    assert results[2] < results[1]


def test_more_stripes_never_slower(results):
    assert results[2] <= results[1] * 1.02
    assert results[4] <= results[2] * 1.05


def test_four_stripes_materially_faster(results):
    """The visible track-switch share of clustered latency shrinks;
    with page-affine routing, consecutive requests still co-locate on
    a stripe 1/N of the time, so the benefit scales with N."""
    assert results[4] < results[1] * 0.95
