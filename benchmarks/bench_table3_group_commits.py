"""Table 3: number of group commits (synchronous log forces) in a
TPC-C run at concurrency 4 as the log buffer size grows.

Paper numbers for a 10,000-transaction run:

    buffer (KB):      4    100    400    800    1200
    group commits: 10960    448    113     57      39

The count is essentially total-log-volume / buffer-size, so it falls
inverse-proportionally; at 4 KB the buffer is smaller than a single
transaction's log records, so there is more than one force per
transaction.  Default scale is 1500 transactions (``--full-scale``
restores 10,000); counts are also reported normalized per 1000
transactions so the inverse-proportionality is visible at any scale.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.analysis import render_table
from repro.tpcc import TpccRunConfig, TpccRunResult, run_tpcc
from benchmarks.conftest import print_report

BUFFER_SIZES_KB = [4, 100, 400, 800, 1200]
PAPER_COUNTS = {4: 10960, 100: 448, 400: 113, 800: 57, 1200: 39}
PAPER_TRANSACTIONS = 10_000


@pytest.fixture(scope="module")
def results(request) -> Dict[int, TpccRunResult]:
    transactions = (PAPER_TRANSACTIONS
                    if request.config.getoption("--full-scale") else 1500)
    out = {}
    for buffer_kb in BUFFER_SIZES_KB:
        config = TpccRunConfig(system="ext2+gc",
                               transactions=transactions,
                               concurrency=4, warehouses=1,
                               log_buffer_kb=buffer_kb, seed=24)
        out[buffer_kb] = run_tpcc(config)
    return out


def test_table3_report(results, once):
    def build_report():
        rows = []
        for buffer_kb in BUFFER_SIZES_KB:
            result = results[buffer_kb]
            completed = result.transactions_completed
            per_1k = result.group_commits / completed * 1000
            paper_per_1k = (PAPER_COUNTS[buffer_kb]
                            / PAPER_TRANSACTIONS * 1000)
            rows.append([buffer_kb, result.group_commits, per_1k,
                         paper_per_1k])
        completed = results[4].transactions_completed
        return render_table(
            ["log buffer (KB)", "group commits",
             "per 1000 tx", "paper per 1000 tx"],
            rows,
            title=(f"Table 3: group commits vs log buffer size "
                   f"(concurrency 4, w=1, {completed} transactions; "
                   f"paper ran 10,000)"))

    print_report(once(build_report))
    counts = [results[kb].group_commits for kb in BUFFER_SIZES_KB]
    assert all(a > b for a, b in zip(counts, counts[1:]))
    assert counts[0] / counts[-1] > 20


def test_counts_strictly_decreasing(results):
    counts = [results[kb].group_commits for kb in BUFFER_SIZES_KB]
    assert all(a > b for a, b in zip(counts, counts[1:])), counts


def test_small_buffer_forces_near_once_per_transaction(results):
    """Paper: 10,960 forces for 10,000 transactions at 4 KB (1.1/tx).
    With 4 concurrent terminals some commits share a force while a
    flush is in progress, so we observe ~0.5-1 per transaction — an
    order of magnitude above the 100 KB configuration either way."""
    result = results[4]
    assert result.group_commits > result.transactions_completed * 0.4
    assert result.group_commits > results[100].group_commits * 8


def test_inverse_proportionality(results):
    """Count x buffer size is roughly constant once the buffer exceeds
    a transaction's log volume (100 KB on)."""
    products = [results[kb].group_commits * kb
                for kb in BUFFER_SIZES_KB[1:]]
    top, bottom = max(products), min(products)
    assert top / bottom < 3.0, products


def test_throughput_insensitive_to_buffer_beyond_50kb(results):
    """§5.2: 'When the log buffer size is larger than 50 KBytes, the
    disk I/O time for logging and the transaction throughput do not
    change much.'"""
    rates = [results[kb].tpmc for kb in (100, 400, 800, 1200)]
    assert max(rates) / min(rates) < 1.25, rates
