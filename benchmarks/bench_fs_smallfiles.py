"""Small synchronous files through a real file system layer.

The paper motivates Trail with fault-tolerant services that fsync
constantly — its related work cites Swartz's LISA '96 news-server
study ("The brave little toaster meets usenet"), the classic
small-synchronous-file workload.  This benchmark runs a
create-write-fsync loop (mail/news spool style) through the mini file
system over Trail and over the standard driver: every operation pays
data block + inode + bitmap forces, so the driver's synchronous-write
latency multiplies through the whole metadata path.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.baselines.standard import StandardDriver
from repro.core.config import TrailConfig
from repro.core.instance import TrailInstance
from repro.disk.presets import st41601n, wd_caviar_10gb
from repro.fs import FileSystem
from repro.sim import Simulation
from benchmarks.conftest import print_report

FILES = 60
FILE_BYTES = 2048  # a small news article / mail message


def run_spool(kind: str):
    sim = Simulation()
    data_drive = wd_caviar_10gb().make_drive(sim, "data0")
    if kind == "trail":
        log_drive = st41601n().make_drive(sim, "log")
        device = TrailInstance(
            sim, log_drive, {0: data_drive}, TrailConfig()).driver
    else:
        device = StandardDriver(sim, {0: data_drive})
    fs = sim.run_until(sim.process(
        FileSystem.mkfs(sim, device, total_blocks=256)))

    def spool():
        per_file = []
        for index in range(FILES):
            start = sim.now
            handle = yield from fs.create(f"article.{index}")
            yield from fs.write(handle, 0,
                                bytes([index % 255 + 1]) * FILE_BYTES,
                                sync=True)
            per_file.append(sim.now - start)
            if index % 3 == 0:
                yield from fs.unlink(f"article.{index}")  # expire
        return per_file

    per_file = sim.run_until(sim.process(spool()))
    assert fs.check() == []
    return sum(per_file) / len(per_file)


@pytest.fixture(scope="module")
def results():
    return {kind: run_spool(kind) for kind in ("trail", "standard")}


def test_smallfile_report(results, once):
    def build_report():
        speedup = results["standard"] / results["trail"]
        return render_table(
            ["file system on", "mean create+write+fsync (ms)",
             "speedup"],
            [["trail", results["trail"], f"{speedup:.1f}x"],
             ["standard", results["standard"], "1.0x"]],
            title=(f"news-spool workload: {FILES} x {FILE_BYTES} B "
                   "synchronous files through the mini file system"))

    print_report(once(build_report))
    assert results["trail"] < results["standard"]


def test_trail_materially_faster_for_small_files(results):
    """Metadata-heavy small-file fsyncs multiply the per-write win."""
    assert results["standard"] / results["trail"] > 2.0
