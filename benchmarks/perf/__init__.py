"""Wall-clock (engine-speed) benchmarks — see bench_wallclock.py."""
