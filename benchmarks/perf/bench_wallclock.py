"""Wall-clock perf gate: the engine must stay fast.

Unlike the figure/table benchmarks (which measure *simulated* time),
this module measures how fast the simulator itself runs.  It times the
canonical scenarios from :mod:`repro.analysis.perf`, writes the
current numbers to ``BENCH_perf.json`` at the repo root, and holds
every scenario to a required ops/sec ratio over the checked-in
baseline (``benchmarks/perf/BENCH_baseline.json``).

The baseline is re-anchored at the start of each optimization PR to
the previously committed ``BENCH_perf.json``, so the gates measure
*that PR's* claim: the kernel/storage microbenchmarks must not
regress (>= 0.95x absorbs timer noise), and the DB/TPC-C macro
scenarios must hold the speedup the PR delivered (see
``REQUIRED_SPEEDUP``).  The scenario bodies are frozen — see the perf
module docstring — so the ratio measures the engine, not benchmark
drift.  Each scenario is timed best-of-N (``PERF_ROUNDS`` env var,
default 5) because wall-clock numbers on a shared machine are noisy in
one direction only: interference makes runs slower, never faster.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/perf -m perf -q -s

These tests are marked ``perf`` and are excluded from the tier-1 suite
(``testpaths`` only covers ``tests/``); the quick sanity check that
*does* run in tier-1 lives in ``tests/perf/test_perf_smoke.py``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.analysis.perf import (
    SCENARIOS, PerfResult, run_scenario, write_report)
from benchmarks.conftest import print_report

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_baseline.json"
REPORT_PATH = REPO_ROOT / "BENCH_perf.json"

#: Required ops/sec ratio over the baseline, per scenario.  The
#: microbenchmarks were the previous perf PR's 2x deliverable and now
#: just must not regress; the macro scenarios are this PR's layers.
REQUIRED_SPEEDUP = {
    "kernel-churn": 0.95,
    "sector-churn": 0.95,
    "fig3-sparse": 1.2,
    "tpcc-small": 2.0,
}

#: Timing repetitions; best-of because noise only ever slows a run down.
ROUNDS = max(3, int(os.environ.get("PERF_ROUNDS", "5")))

pytestmark = pytest.mark.perf


def best_of(name: str, scale: float = 1.0, rounds: int = ROUNDS) -> PerfResult:
    """Run ``name`` ``rounds`` times, keep the fastest."""
    return max((run_scenario(name, scale) for _ in range(rounds)),
               key=lambda result: result.ops_per_sec)


@pytest.fixture(scope="module")
def baseline() -> dict:
    return json.loads(BASELINE_PATH.read_text())


@pytest.fixture(scope="module")
def measured() -> dict:
    """Best-of-N PerfResult for every scenario, shared across tests."""
    return {name: best_of(name) for name in SCENARIOS}


def test_report_written(measured):
    """Write BENCH_perf.json at the repo root in the stable schema."""
    report = {
        name: {
            "ops_per_sec": round(result.ops_per_sec, 2),
            "wall_s": round(result.wall_s, 4),
        }
        for name, result in measured.items()
    }
    write_report(report, REPORT_PATH)
    assert len(report) >= 4
    for row in report.values():
        assert set(row) == {"ops_per_sec", "wall_s"}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_holds_required_speedup(name, measured, baseline):
    """Every scenario must hold its per-scenario gate over baseline."""
    required = REQUIRED_SPEEDUP[name]
    result = measured[name]
    old = baseline[name]["ops_per_sec"]
    ratio = result.ops_per_sec / old
    print_report(
        f"{name}: {result.ops_per_sec:,.0f} ops/s vs baseline "
        f"{old:,.0f} ops/s -> {ratio:.2f}x (gate: {required}x)")
    assert ratio >= required, (
        f"{name} below its {required}x gate: {ratio:.2f}x over baseline")
