"""Wall-clock perf gate: the engine must stay fast.

Unlike the figure/table benchmarks (which measure *simulated* time),
this module measures how fast the simulator itself runs.  It times the
canonical scenarios from :mod:`repro.analysis.perf`, writes the
current numbers to ``BENCH_perf.json`` at the repo root, and holds
every scenario to a required ops/sec ratio over the checked-in
baseline (``benchmarks/perf/BENCH_baseline.json``).

The baseline is re-anchored at the start of each optimization PR to
the previously committed ``BENCH_perf.json``.  The scenario bodies
are frozen — see the perf module docstring — so the ratio measures
the engine, not benchmark drift.  Each scenario is timed best-of-N
(``PERF_ROUNDS`` env var, default 5) because wall-clock numbers on a
shared machine are noisy in one direction only: interference makes
runs slower, never faster.

Best-of-N absorbs within-run noise but not *between-day* machine
drift: identical code has measured up to ~15% apart on different days
of this container's life, which is why ``REQUIRED_SPEEDUP`` holds
ratios near 1.0 rather than encoding each PR's delivered speedup.  A
PR's true gain is measured with the interleaved A/B protocol
(old/new subprocesses alternating in one session — see
docs/PERFORMANCE.md) and *held* by the deterministic per-scenario
allocation budgets (``BENCH_alloc.json`` via ``make test-trailhot``),
which do not move with machine load at all.  These ratio gates are
the coarse backstop underneath both.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/perf -m perf -q -s

These tests are marked ``perf`` and are excluded from the tier-1 suite
(``testpaths`` only covers ``tests/``); the quick sanity check that
*does* run in tier-1 lives in ``tests/perf/test_perf_smoke.py``.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path

import pytest

from repro.analysis.perf import (
    SCENARIOS, PerfResult, run_scenario, write_report)
from benchmarks.conftest import print_report

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_baseline.json"
REPORT_PATH = REPO_ROOT / "BENCH_perf.json"
#: Append-only log of every ``make perf`` run: one JSON object per
#: line with the commit sha, a UTC timestamp, and the full report —
#: so per-machine perf history survives BENCH_perf.json being
#: overwritten by the next run.
HISTORY_PATH = REPO_ROOT / "BENCH_history.jsonl"


def _git_sha() -> str:
    """Current commit sha, or "unknown" outside a usable git checkout."""
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return probe.stdout.strip() if probe.returncode == 0 else "unknown"


def append_history(report: dict, path: Path = HISTORY_PATH) -> dict:
    """Append one run record to the perf history log; returns it."""
    # The history is measurement metadata, not simulation state:
    # wall-clock timestamps are the point here.
    record = {
        "sha": _git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "rounds": ROUNDS,
        "report": report,
    }
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record

#: Required ops/sec ratio over the baseline, per scenario.  The
#: baseline is the previous PR's committed numbers, so after this
#: PR's ~1.18x true tpcc speedup (interleaved A/B measurement) a
#: same-machine-state run lands well above 1.0 on every scenario;
#: 0.85 is the slack between-day machine drift demands (identical
#: code has measured 0.85x-1.02x against these absolute baselines
#: purely with container load).  Tight regression gating lives in the
#: deterministic allocation budgets (make test-trailhot), not here.
REQUIRED_SPEEDUP = {
    "kernel-churn": 0.85,
    "sector-churn": 0.85,
    "fig3-sparse": 0.85,
    "tpcc-small": 0.85,
}

#: Timing repetitions; best-of because noise only ever slows a run down.
ROUNDS = max(3, int(os.environ.get("PERF_ROUNDS", "5")))

pytestmark = pytest.mark.perf


def best_of(name: str, scale: float = 1.0, rounds: int = ROUNDS) -> PerfResult:
    """Run ``name`` ``rounds`` times, keep the fastest."""
    return max((run_scenario(name, scale) for _ in range(rounds)),
               key=lambda result: result.ops_per_sec)


@pytest.fixture(scope="module")
def baseline() -> dict:
    return json.loads(BASELINE_PATH.read_text())


@pytest.fixture(scope="module")
def measured() -> dict:
    """Best-of-N PerfResult for every scenario, shared across tests."""
    return {name: best_of(name) for name in SCENARIOS}


def test_report_written(measured):
    """Write BENCH_perf.json at the repo root in the stable schema."""
    report = {
        name: {
            "ops_per_sec": round(result.ops_per_sec, 2),
            "wall_s": round(result.wall_s, 4),
        }
        for name, result in measured.items()
    }
    write_report(report, REPORT_PATH)
    record = append_history(report)
    assert record["report"] == report
    assert len(report) >= 4
    for row in report.values():
        assert set(row) == {"ops_per_sec", "wall_s"}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_holds_required_speedup(name, measured, baseline):
    """Every scenario must hold its per-scenario gate over baseline."""
    required = REQUIRED_SPEEDUP[name]
    result = measured[name]
    old = baseline[name]["ops_per_sec"]
    ratio = result.ops_per_sec / old
    print_report(
        f"{name}: {result.ops_per_sec:,.0f} ops/s vs baseline "
        f"{old:,.0f} ops/s -> {ratio:.2f}x (gate: {required}x)")
    assert ratio >= required, (
        f"{name} below its {required}x gate: {ratio:.2f}x over baseline")
