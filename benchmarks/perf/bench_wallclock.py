"""Wall-clock perf gate: the engine must stay fast.

Unlike the figure/table benchmarks (which measure *simulated* time),
this module measures how fast the simulator itself runs.  It times the
canonical scenarios from :mod:`repro.analysis.perf`, writes the
current numbers to ``BENCH_perf.json`` at the repo root, and holds the
two microbenchmarks to a >= 2x ops/sec speedup over the checked-in
pre-optimization baseline (``benchmarks/perf/BENCH_baseline.json``).

The baseline was captured on the exact scenario bodies that still run
today (they are frozen — see the perf module docstring), so the ratio
measures the engine, not benchmark drift.  Each scenario is timed
best-of-N because wall-clock numbers on a shared machine are noisy in
one direction only: interference makes runs slower, never faster.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/perf -m perf -q -s

These tests are marked ``perf`` and are excluded from the tier-1 suite
(``testpaths`` only covers ``tests/``); the quick sanity check that
*does* run in tier-1 lives in ``tests/perf/test_perf_smoke.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.perf import (
    MICROBENCHMARKS, SCENARIOS, PerfResult, run_scenario, write_report)
from benchmarks.conftest import print_report

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_baseline.json"
REPORT_PATH = REPO_ROOT / "BENCH_perf.json"

#: Required ops/sec ratio over the pre-optimization baseline.
REQUIRED_SPEEDUP = 2.0

#: Timing repetitions; best-of because noise only ever slows a run down.
ROUNDS = 3

pytestmark = pytest.mark.perf


def best_of(name: str, scale: float = 1.0, rounds: int = ROUNDS) -> PerfResult:
    """Run ``name`` ``rounds`` times, keep the fastest."""
    return max((run_scenario(name, scale) for _ in range(rounds)),
               key=lambda result: result.ops_per_sec)


@pytest.fixture(scope="module")
def baseline() -> dict:
    return json.loads(BASELINE_PATH.read_text())


@pytest.fixture(scope="module")
def measured() -> dict:
    """Best-of-N PerfResult for every scenario, shared across tests."""
    return {name: best_of(name) for name in SCENARIOS}


def test_report_written(measured):
    """Write BENCH_perf.json at the repo root in the stable schema."""
    report = {
        name: {
            "ops_per_sec": round(result.ops_per_sec, 2),
            "wall_s": round(result.wall_s, 4),
        }
        for name, result in measured.items()
    }
    write_report(report, REPORT_PATH)
    assert len(report) >= 4
    for row in report.values():
        assert set(row) == {"ops_per_sec", "wall_s"}


@pytest.mark.parametrize("name", MICROBENCHMARKS)
def test_microbenchmark_speedup(name, measured, baseline):
    """kernel-churn and sector-churn must hold the >= 2x gate."""
    result = measured[name]
    old = baseline[name]["ops_per_sec"]
    ratio = result.ops_per_sec / old
    print_report(
        f"{name}: {result.ops_per_sec:,.0f} ops/s vs baseline "
        f"{old:,.0f} ops/s -> {ratio:.2f}x (gate: {REQUIRED_SPEEDUP}x)")
    assert ratio >= REQUIRED_SPEEDUP, (
        f"{name} regressed below the {REQUIRED_SPEEDUP}x gate: "
        f"{ratio:.2f}x over baseline")


def test_macro_scenarios_no_regression(measured, baseline):
    """The full-stack scenarios must not be slower than the baseline.

    These don't get a 2x gate — most of their time is workload logic on
    top of the engine — but an optimization PR must not trade micro
    wins for macro losses.  5% tolerance absorbs timer noise.
    """
    for name in SCENARIOS:
        if name in MICROBENCHMARKS:
            continue
        ratio = measured[name].ops_per_sec / baseline[name]["ops_per_sec"]
        print_report(f"{name}: {ratio:.2f}x over baseline")
        assert ratio >= 0.95, (
            f"{name} slowed down: {ratio:.2f}x over baseline")
