"""Figure 3: average synchronous write latency, Trail vs the standard
disk subsystem, sparse vs clustered arrivals, 1 and 5 processes.

Paper claims reproduced here:
  * Trail is up to ~12x faster than the standard subsystem.
  * Trail's advantage shrinks as the write size grows (transfer time
    dominates what Trail eliminates).
  * The standard subsystem performs the same under sparse and
    clustered arrivals; Trail is slower clustered than sparse (the
    track-switch overhead is masked only by idle gaps).
  * With 5 processes the gap *widens* in clustered mode (queueing).
  * §5.1 latency decomposition: a 1-sector Trail write costs ~1.4 ms
    (overhead + transfer) with residual rotational latency < 0.5 ms,
    an order of magnitude below the 5.5 ms average rotational delay.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.analysis import (
    build_standard_system, build_trail_system, render_table)
from repro.units import KiB
from repro.workloads import (
    ArrivalMode, SyncWriteWorkload, run_sync_write_workload)
from benchmarks.conftest import print_report

SIZES = [512, KiB(1), KiB(4), KiB(16), KiB(64)]
REQUESTS = 60

Key = Tuple[str, int, str, int]  # (system, size, mode, processes)


def run_cell(system_kind: str, size: int, mode: ArrivalMode,
             processes: int):
    workload = SyncWriteWorkload(
        requests_per_process=REQUESTS, write_bytes=size, mode=mode,
        processes=processes, sparse_gap_ms=5.0, seed=13)
    if system_kind == "trail":
        system = build_trail_system()
    else:
        system = build_standard_system()
    result = run_sync_write_workload(system.sim, system.driver, workload)
    return result, system


@pytest.fixture(scope="module")
def grid() -> Dict[Key, float]:
    cells: Dict[Key, float] = {}
    for system_kind in ("trail", "standard"):
        for size in SIZES:
            for mode in ArrivalMode:
                for processes in (1, 5):
                    result, _system = run_cell(system_kind, size, mode,
                                               processes)
                    cells[(system_kind, size, mode.value, processes)] = \
                        result.mean_latency_ms
    return cells


def test_figure3_report(grid, once):
    def build_report():
        sections = []
        for processes in (1, 5):
            rows = []
            for size in SIZES:
                row = [f"{size // 1024}K" if size >= 1024 else f"{size}B"]
                for system_kind in ("trail", "standard"):
                    for mode in ("sparse", "clustered"):
                        row.append(grid[(system_kind, size, mode,
                                         processes)])
                speed = (grid[("standard", size, "sparse", processes)]
                         / grid[("trail", size, "sparse", processes)])
                row.append(f"{speed:.1f}x")
                rows.append(row)
            sections.append(render_table(
                ["size", "trail sparse", "trail clust",
                 "std sparse", "std clust", "speedup(sparse)"],
                rows,
                title=(f"Figure 3({'a' if processes == 1 else 'b'}): "
                       f"mean sync write latency (ms), "
                       f"{processes} process(es) "
                       f"[paper: Trail up to 11.85x faster]")))
        return "\n\n".join(sections)

    print_report(once(build_report))
    # Headline shape (also covered in granular tests below, which run
    # without --benchmark-only).
    assert (grid[("standard", KiB(1), "sparse", 1)]
            / grid[("trail", KiB(1), "sparse", 1)]) > 5.0
    assert (grid[("trail", KiB(1), "clustered", 1)]
            > grid[("trail", KiB(1), "sparse", 1)])


def test_trail_much_faster_small_writes(grid):
    ratio = (grid[("standard", KiB(1), "sparse", 1)]
             / grid[("trail", KiB(1), "sparse", 1)])
    assert ratio > 5.0, f"expected a large multiple, got {ratio:.1f}x"


def test_advantage_decreases_with_size(grid):
    ratios = [grid[("standard", size, "sparse", 1)]
              / grid[("trail", size, "sparse", 1)] for size in SIZES]
    assert ratios[0] > ratios[-1] * 1.5
    # Broadly decreasing (allow small local noise).
    assert ratios[0] == max(ratios)


def test_standard_mode_insensitive(grid):
    for size in SIZES:
        sparse = grid[("standard", size, "sparse", 1)]
        clustered = grid[("standard", size, "clustered", 1)]
        assert abs(sparse - clustered) / sparse < 0.25


def test_trail_clustered_slower_than_sparse(grid):
    for size in SIZES[:3]:  # visible while switch cost matters
        assert (grid[("trail", size, "clustered", 1)]
                > grid[("trail", size, "sparse", 1)])


def test_multiprogramming_widens_clustered_gap(grid):
    """Figure 3(b)'s observation: with 5 processes the Trail advantage
    in clustered mode exceeds the single-process one."""
    size = KiB(1)
    gap_1 = (grid[("standard", size, "clustered", 1)]
             / grid[("trail", size, "clustered", 1)])
    gap_5 = (grid[("standard", size, "clustered", 5)]
             / grid[("trail", size, "clustered", 5)])
    assert gap_5 > gap_1


def test_latency_decomposition_single_sector():
    """§5.1: ~1.4 ms one-sector writes; residual rotation < 0.5 ms
    (vs 5.5 ms average rotational latency of the drive)."""
    workload = SyncWriteWorkload(requests_per_process=100,
                                 write_bytes=512, seed=17)
    system = build_trail_system()
    result = run_sync_write_workload(system.sim, system.driver, workload)
    driver = system.driver
    mean_rotation = driver.predictor.realized_rotation.mean
    print_report(
        f"single-sector Trail write: mean latency "
        f"{result.mean_latency_ms:.2f} ms (paper ~1.40 ms); "
        f"mean realized rotational wait {mean_rotation:.3f} ms "
        f"(paper < 0.5 ms; drive average 5.5 ms)")
    assert result.mean_latency_ms < 2.5
    assert mean_rotation < 0.5
    average_rotational = \
        driver.log_drive.rotation.average_rotational_latency_ms
    assert mean_rotation < average_rotational / 10
