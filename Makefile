PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench perf perf-smoke profile lint trailsan units iso trailhot analyzers sansan test-trailsan test-trailiso test-trailhot typecheck trailmc mc

# Tier-1: the full unit/property/integration suite (includes perf-smoke).
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Regenerate every paper table/figure with shape assertions.
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ -s

# Wall-clock engine gate: >= 2x over the checked-in baseline on the
# microbenchmarks; rewrites BENCH_perf.json at the repo root.
perf:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/perf -m perf -q -s

# Fast perf sanity (< 30 s, part of tier-1): scenarios run, schema holds.
perf-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/perf -q

# Repo-native static analysis (docs/STATIC_ANALYSIS.md): determinism,
# error-taxonomy, and on-disk-format lint rules — over src/, tests/,
# and the analysis tools themselves (self-lint).
lint:
	PYTHONPATH=tools $(PYTHON) -m trailint src tests tools

# Yield-point atomicity & lock-discipline analysis of the cooperative
# sim (docs/STATIC_ANALYSIS.md): guarded_by / atomic_group annotations,
# TSN001-TSN005, over src/ and the tools tree (self-analysis).
trailsan:
	PYTHONPATH=tools $(PYTHON) -m trailsan src tools

# Dimension & address-space flow analysis (docs/STATIC_ANALYSIS.md):
# bytes vs sectors, ms vs s, log-disk vs data-disk LBAs, TUN001-TUN008,
# seeded from repro.units annotations — over src/ and the tools tree.
units:
	$(PYTHON) -m tools.trailunits src tools

# Cross-instance isolation analysis (docs/STATIC_ANALYSIS.md): module
# mutables, context escapes, ambient singletons, TIS001-TIS005 plus
# TIS000 annotation hygiene — over src/ and the tools tree.
iso:
	$(PYTHON) -m tools.trailiso src tools

# Hot-region allocation & complexity analysis (docs/STATIC_ANALYSIS.md):
# per-iteration container/closure churn, slotless instantiation,
# repeated lookups, accidental quadratics, THP001-THP008 plus THP000
# annotation hygiene — seeded from `# trailhot: hot` annotations on
# the dispatch/WAL/lock/buffer/encode paths, over src/.
trailhot:
	$(PYTHON) -m tools.trailhot src

# Static schedule-interference analysis (docs/STATIC_ANALYSIS.md):
# per-yield-segment footprints over annotated shared state and the
# segment independence relation consumed by `make mc`.  An extraction
# pass, not a lint — it has no findings and never fails a clean tree.
trailmc:
	$(PYTHON) -m tools.trailmc src

# All five repo-native lint passes over ONE shared parse
# (tools/analysis/driver.py): identical findings to the individual
# targets above, but each file is read and parsed once and the report
# carries per-tool wall-clock plus the reparse time the single pass
# saved.  `sansan` kept as the historical alias.
analyzers:
	$(PYTHON) -m tools.analysis
sansan: analyzers

# Bounded schedule model checking: enumerate same-time dispatch orders
# and cross-instance interleavings (preemption bound 3, 250 schedules
# per scenario), assert byte-identical digests + sanitizer invariants
# on every schedule, then prove the checker still has teeth by
# requiring it to catch a reintroduced historical tail-chain tear.
mc:
	PYTHONPATH=$(PYTHONPATH):. $(PYTHON) -m repro mc
	PYTHONPATH=$(PYTHONPATH):. $(PYTHON) -m repro mc crash-recovery \
		--mutate tail-chain-tear --budget 5

# Tier-1 suite under the TRAILSAN=1 runtime sanitizer: atomic groups
# are value-checked at every context switch.
test-trailsan:
	TRAILSAN=1 PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Tier-1 suite under the TRAILISO=1 runtime twin: the interleaved
# multi-instance matrix widens (tests/integration/test_two_instances).
test-trailiso:
	TRAILISO=1 PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Perf suite under the TRAILHOT=1 runtime twin: per-scenario
# allocation budgets (Python calls + peak traced bytes) are measured
# and gated against benchmarks/perf/BENCH_alloc.json.
test-trailhot:
	TRAILHOT=1 PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/perf -q

# Strict typing over the paper-critical packages (mypy.ini).  mypy is a
# CI dependency, not a vendored one: when it is absent locally the
# target says so and succeeds; CI installs it and the job is blocking.
typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy --config-file mypy.ini \
			-p repro.core -p repro.disk -p repro.sim -p repro.faults \
			-p repro.fs -p repro.raid; \
	else \
		echo "typecheck: mypy not installed; skipping (CI runs it)"; \
	fi

# Usage: make profile SCENARIO=kernel-churn
SCENARIO ?= kernel-churn
profile:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro profile $(SCENARIO)
