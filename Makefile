PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench perf perf-smoke profile

# Tier-1: the full unit/property/integration suite (includes perf-smoke).
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Regenerate every paper table/figure with shape assertions.
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ -s

# Wall-clock engine gate: >= 2x over the checked-in baseline on the
# microbenchmarks; rewrites BENCH_perf.json at the repo root.
perf:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/perf -m perf -q -s

# Fast perf sanity (< 30 s, part of tier-1): scenarios run, schema holds.
perf-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/perf -q

# Usage: make profile SCENARIO=kernel-churn
SCENARIO ?= kernel-churn
profile:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro profile $(SCENARIO)
